(** UI-Code Navigation (Sec. 3): the bidirectional mapping between
    boxes in the live view and [boxed] statements in the code view.

    - live view -> code: tapping a box selects the boxed statement that
      created it ({!select_at}); nested boxes cover their containers,
      so {!enclosing_at} also exposes the whole chain for the paper's
      "nested selection mode" (Sec. 5);
    - code -> live view: selecting a boxed statement highlights every
      box it produced — several, when the statement sits in a loop
      ({!frames_of_stmt}, Fig. 2's collective selection). *)

module Srcid = Live_core.Srcid

(** A selection: the boxed statement's id, its source span, and its
    source text. *)
type selection = {
  srcid : Srcid.t;
  span : Live_surface.Loc.t;
  text : string;
}

let selection_of_srcid (compiled : Live_surface.Compile.compiled)
    (id : Srcid.t) : selection option =
  match
    Live_surface.Sast.find_stmt compiled.Live_surface.Compile.ast
      (Srcid.to_int id)
  with
  | Some stmt ->
      Some
        {
          srcid = id;
          span = stmt.Live_surface.Sast.sloc;
          text = Live_surface.Printer.stmt_to_string stmt;
        }
  | None -> None

(** Deepest boxed statement whose box contains the point. *)
let select_at (session : Session.t)
    (compiled : Live_surface.Compile.compiled) ~(x : int) ~(y : int) :
    selection option =
  match Session.layout session with
  | None -> None
  | Some root -> (
      match Live_ui.Layout.srcid_at root ~x ~y with
      | None -> None
      | Some id -> selection_of_srcid compiled id)

(** The chain of boxed statements enclosing a point, innermost first —
    tapping repeatedly walks outward through this list. *)
let enclosing_at (session : Session.t)
    (compiled : Live_surface.Compile.compiled) ~(x : int) ~(y : int) :
    selection list =
  match Session.layout session with
  | None -> []
  | Some root ->
      Live_ui.Layout.nodes_at root ~x ~y
      |> List.rev
      |> List.filter_map (fun (n : Live_ui.Layout.node) ->
             Option.bind n.Live_ui.Layout.srcid
               (selection_of_srcid compiled))

(** Every frame produced by a boxed statement (code -> live view). *)
let frames_of_stmt (session : Session.t) (id : Srcid.t) :
    Live_ui.Geometry.rect list =
  match Session.layout session with
  | None -> []
  | Some root -> Live_ui.Layout.frames_of_srcid root id

(** All boxed-statement ids visible in the current display. *)
let visible_srcids (session : Session.t) : Srcid.t list =
  match Session.display_content session with
  | None -> []
  | Some b -> Live_core.Boxcontent.srcids b
