(** Rectangles in character-cell space; origin top-left, [y] grows
    downward. *)

type rect = { x : int; y : int; w : int; h : int }

val empty : rect
val make : x:int -> y:int -> w:int -> h:int -> rect
val contains : rect -> x:int -> y:int -> bool

val inset : rect -> int -> rect
(** Shrink by a uniform inset on all sides. *)

val intersect : rect -> rect -> rect
val area : rect -> int
val equal : rect -> rect -> bool
val pp : Format.formatter -> rect -> unit
