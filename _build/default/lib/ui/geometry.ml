(** Rectangles in character-cell space.  The origin is the top-left
    corner; [x] grows rightward, [y] downward. *)

type rect = { x : int; y : int; w : int; h : int }

let empty = { x = 0; y = 0; w = 0; h = 0 }

let make ~x ~y ~w ~h = { x; y; w = max 0 w; h = max 0 h }

let contains (r : rect) ~(x : int) ~(y : int) =
  x >= r.x && x < r.x + r.w && y >= r.y && y < r.y + r.h

(** Shrink a rectangle by a uniform inset on all four sides. *)
let inset (r : rect) (n : int) =
  { x = r.x + n; y = r.y + n; w = max 0 (r.w - (2 * n)); h = max 0 (r.h - (2 * n)) }

let area (r : rect) = r.w * r.h

let intersect (a : rect) (b : rect) : rect =
  let x0 = max a.x b.x and y0 = max a.y b.y in
  let x1 = min (a.x + a.w) (b.x + b.w) and y1 = min (a.y + a.h) (b.y + b.h) in
  if x1 <= x0 || y1 <= y0 then empty
  else { x = x0; y = y0; w = x1 - x0; h = y1 - y0 }

let equal (a : rect) (b : rect) =
  a.x = b.x && a.y = b.y && a.w = b.w && a.h = b.h

let pp ppf (r : rect) = Fmt.pf ppf "%dx%d+%d+%d" r.w r.h r.x r.y
