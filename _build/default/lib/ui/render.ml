(** Painting a layout tree into a {!Framebuffer}.

    Paint order is parent-first: a box fills its background, draws its
    border, then paints its text and children over it, so nested boxes
    naturally override inherited styling.  Foreground color inherits
    down the tree; background does not need to (the parent already
    painted those cells). *)

let rec paint (fb : Framebuffer.t) ?(fg = Color.Default) (n : Layout.node) :
    unit =
  let style = n.Layout.style in
  if style.Style.background <> Color.Default then
    Framebuffer.fill_rect fb n.Layout.frame ~bg:style.Style.background;
  if style.Style.border then begin
    let border_fg =
      if style.Style.color <> Color.Default then style.Style.color else fg
    in
    Framebuffer.draw_border fb n.Layout.frame ~fg:border_fg ()
  end;
  let fg =
    if style.Style.color <> Color.Default then style.Style.color else fg
  in
  let clip_bottom = n.Layout.frame.Geometry.y + n.Layout.frame.Geometry.h in
  List.iter
    (fun item ->
      match item with
      | Layout.Text { lines; rect; style = tstyle } ->
          let tfg =
            if tstyle.Style.color <> Color.Default then tstyle.Style.color
            else fg
          in
          let bold = tstyle.Style.bold || tstyle.Style.fontsize > 1 in
          List.iteri
            (fun i line ->
              let y = rect.Geometry.y + (i * tstyle.Style.fontsize) in
              if y < clip_bottom then
                Framebuffer.draw_text fb ~x:rect.Geometry.x ~y
                  ~max_x:(rect.Geometry.x + rect.Geometry.w)
                  ~fg:tfg ~bold line)
            lines
      | Layout.Child c -> paint fb ~fg c)
    n.Layout.items

(** Lay out and paint a page's box content.  Returns the framebuffer
    and the layout tree (for hit-testing and navigation). *)
let render_page ?cache ?(width = 48) (b : Live_core.Boxcontent.t) :
    Framebuffer.t * Layout.node =
  let root = Layout.layout_page ?cache ~width b in
  let height = max 1 (Layout.total_height root) in
  let fb = Framebuffer.create ~width ~height in
  paint fb root;
  (fb, root)

(** Plain-text screenshot of box content — the golden-test format. *)
let screenshot ?width (b : Live_core.Boxcontent.t) : string =
  let fb, _ = render_page ?width b in
  Framebuffer.to_text fb

(** ANSI screenshot for terminals. *)
let screenshot_ansi ?width (b : Live_core.Boxcontent.t) : string =
  let fb, _ = render_page ?width b in
  Framebuffer.to_ansi fb

(** Screenshot of a system state's display; [⊥] renders as a marker. *)
let screenshot_state ?width (st : Live_core.State.t) : string =
  match st.Live_core.State.display with
  | Live_core.State.Invalid -> "<display invalid>\n"
  | Live_core.State.Shown b -> screenshot ?width b
