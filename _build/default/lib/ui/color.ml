(** Colors for the character-cell renderer.

    The paper's demo uses named colors ([colors->light blue] in the I3
    improvement); we support a fixed palette of names mapped to
    xterm-256 indexes for ANSI output.  Unknown names fall back to
    [Default] rather than failing: styling is best-effort, semantics
    (the box tree) is what the formal model governs. *)

type t = Default | Indexed of int

let palette : (string * int) list =
  [
    ("black", 16); ("white", 231); ("red", 196); ("green", 34);
    ("blue", 21); ("yellow", 226); ("magenta", 201); ("cyan", 51);
    ("gray", 244); ("grey", 244); ("light gray", 250); ("light grey", 250);
    ("dark gray", 238); ("dark grey", 238); ("orange", 208);
    ("light blue", 117); ("light green", 120); ("light red", 210);
    ("pink", 218); ("purple", 93); ("brown", 130); ("navy", 17);
    ("teal", 30); ("maroon", 88); ("olive", 100); ("silver", 252);
  ]

let of_name (name : string) : t =
  let name = String.lowercase_ascii (String.trim name) in
  match List.assoc_opt name palette with
  | Some i -> Indexed i
  | None -> Default

let known (name : string) : bool =
  List.mem_assoc (String.lowercase_ascii (String.trim name)) palette

let equal (a : t) (b : t) = a = b

(** ANSI SGR fragment selecting this color as foreground/background;
    empty for [Default]. *)
let sgr_fg = function
  | Default -> ""
  | Indexed i -> Printf.sprintf "38;5;%d" i

let sgr_bg = function
  | Default -> ""
  | Indexed i -> Printf.sprintf "48;5;%d" i

let pp ppf = function
  | Default -> Fmt.string ppf "default"
  | Indexed i -> Fmt.pf ppf "color-%d" i
