lib/ui/style.mli: Color Live_core
