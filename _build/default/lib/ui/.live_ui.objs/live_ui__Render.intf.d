lib/ui/render.mli: Color Framebuffer Layout Live_core
