lib/ui/geometry.mli: Format
