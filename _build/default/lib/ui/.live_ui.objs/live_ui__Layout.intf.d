lib/ui/layout.mli: Geometry Live_core Style
