lib/ui/color.mli: Format
