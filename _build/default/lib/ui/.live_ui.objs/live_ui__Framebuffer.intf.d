lib/ui/framebuffer.mli: Color Geometry
