lib/ui/framebuffer.ml: Array Buffer Bytes Color Geometry List String
