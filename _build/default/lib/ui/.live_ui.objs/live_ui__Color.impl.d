lib/ui/color.ml: Fmt List Printf String
