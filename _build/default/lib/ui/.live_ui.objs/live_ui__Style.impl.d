lib/ui/style.ml: Color Float List Live_core String
