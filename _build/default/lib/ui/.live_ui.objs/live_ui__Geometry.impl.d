lib/ui/geometry.ml: Fmt
