lib/ui/render.ml: Color Framebuffer Geometry Layout List Live_core Style
