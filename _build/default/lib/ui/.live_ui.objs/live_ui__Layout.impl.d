lib/ui/layout.ml: Buffer Geometry Hashtbl List Live_core String Style
