(** Painting a layout tree into a framebuffer: parent-first, so nested
    boxes override inherited styling; foreground color inherits. *)

val paint : Framebuffer.t -> ?fg:Color.t -> Layout.node -> unit

val render_page :
  ?cache:Layout.cache ->
  ?width:int ->
  Live_core.Boxcontent.t ->
  Framebuffer.t * Layout.node

val screenshot : ?width:int -> Live_core.Boxcontent.t -> string
(** Plain text — the golden-test format. *)

val screenshot_ansi : ?width:int -> Live_core.Boxcontent.t -> string

val screenshot_state : ?width:int -> Live_core.State.t -> string
(** [⊥] renders as ["<display invalid>"]. *)
