(** Named colors mapped to xterm-256 indexes (the I3 improvement's
    [colors->light blue]).  Unknown names fall back to [Default]:
    styling is best-effort; semantics lives in the box tree. *)

type t = Default | Indexed of int

val of_name : string -> t
(** Case-insensitive; trims whitespace. *)

val known : string -> bool
val equal : t -> t -> bool

val sgr_fg : t -> string
(** ANSI SGR fragment for this foreground; [""] for [Default]. *)

val sgr_bg : t -> string

val palette : (string * int) list
val pp : Format.formatter -> t -> unit
