(** A character-cell framebuffer with per-cell colors and emphasis —
    this repository's display device.  Plain-text output feeds the
    golden tests; ANSI output feeds the CLI. *)

type cell = { ch : char; fg : Color.t; bg : Color.t; bold : bool }

val blank : cell

type t = { width : int; height : int; cells : cell array }

val create : width:int -> height:int -> t
val copy : t -> t
val in_bounds : t -> int -> int -> bool

val get : t -> x:int -> y:int -> cell
(** Out-of-bounds reads return {!blank}. *)

val set : t -> x:int -> y:int -> cell -> unit
(** Out-of-bounds writes are ignored. *)

val set_char :
  t -> x:int -> y:int -> ?fg:Color.t -> ?bg:Color.t -> ?bold:bool ->
  char -> unit

val fill_rect : t -> Geometry.rect -> bg:Color.t -> unit
(** Paint a background; boxes paint back-to-front. *)

val draw_text :
  t -> x:int -> y:int -> ?max_x:int -> ?fg:Color.t -> ?bold:bool ->
  string -> unit
(** Clipped at the buffer edge and at [max_x]; preserves the existing
    cell backgrounds so text composes over fills. *)

val draw_border : t -> Geometry.rect -> ?fg:Color.t -> unit -> unit
(** ASCII frame ([+--+] / [|]) just inside the rectangle; skipped for
    degenerate rectangles. *)

val to_text : t -> string
(** One line per row, trailing blanks trimmed — the golden format. *)

val to_ansi : t -> string

val diff_cells : t -> t -> int
(** Number of differing cells; [max_int] on size mismatch. *)
