lib/core/state_typing.ml: Ast Attrs Boxcontent Eff Event Fmt Fqueue Hashtbl Ident Program Result State Store Typ Typecheck
