lib/core/eval.mli: Ast Boxcontent Eff Event Fqueue Program Store
