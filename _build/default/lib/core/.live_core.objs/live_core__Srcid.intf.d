lib/core/srcid.mli: Format Map Set
