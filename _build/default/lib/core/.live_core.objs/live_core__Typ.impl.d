lib/core/typ.ml: Eff Fmt List
