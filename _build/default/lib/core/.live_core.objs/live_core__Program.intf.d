lib/core/program.mli: Ast Format Ident Typ
