lib/core/fqueue.mli: Fmt Format
