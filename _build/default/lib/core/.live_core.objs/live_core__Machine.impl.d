lib/core/machine.ml: Ast Boxcontent Eval Event Fixup Fmt Fqueue Ident List Program Result State State_typing Store
