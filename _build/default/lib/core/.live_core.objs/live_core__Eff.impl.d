lib/core/eff.ml: Fmt
