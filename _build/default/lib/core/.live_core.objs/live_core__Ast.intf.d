lib/core/ast.mli: Ident Set Srcid Typ
