lib/core/store.ml: Ast Fmt Ident List Map Pretty Program String
