lib/core/machine.mli: Ast Fixup Format Program State
