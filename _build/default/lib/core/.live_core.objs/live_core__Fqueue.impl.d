lib/core/fqueue.ml: Fmt List
