lib/core/program.ml: Ast Fmt Hashtbl Ident List Pretty String Typ
