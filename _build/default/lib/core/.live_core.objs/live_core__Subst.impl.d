lib/core/subst.ml: Ast Ident Lazy List Printf String Typ
