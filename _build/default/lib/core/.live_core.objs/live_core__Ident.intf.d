lib/core/ident.mli:
