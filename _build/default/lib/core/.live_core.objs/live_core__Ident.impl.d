lib/core/ident.ml: Printf String
