lib/core/pretty.ml: Ast Buffer Float Fmt List Srcid String Typ
