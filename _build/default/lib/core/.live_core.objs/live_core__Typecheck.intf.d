lib/core/typecheck.mli: Ast Eff Ident Program Typ
