lib/core/typecheck.ml: Ast Attrs Eff Fmt Ident List Prim Program Result Typ
