lib/core/state_typing.mli: Ast Event Fqueue Ident Program State Store
