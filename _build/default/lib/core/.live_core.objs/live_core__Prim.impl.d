lib/core/prim.ml: Ast Buffer Eff Float Fmt Int64 List Pretty Printf String Typ
