lib/core/core.ml:
