lib/core/state.ml: Ast Boxcontent Event Fmt Fqueue Ident List Pretty Program Store
