lib/core/fixup.ml: Ast Ident List Program Store Typecheck
