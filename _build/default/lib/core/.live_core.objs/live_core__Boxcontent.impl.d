lib/core/boxcontent.ml: Ast Fmt Hashtbl Ident List Option Pretty Srcid String
