lib/core/ast.ml: Float Ident List Option Set Srcid String Typ
