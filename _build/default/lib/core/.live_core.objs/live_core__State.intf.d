lib/core/state.mli: Ast Boxcontent Event Format Fqueue Ident Program Store
