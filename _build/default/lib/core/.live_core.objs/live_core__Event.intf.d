lib/core/event.mli: Ast Format Ident
