lib/core/event.ml: Ast Fmt Ident Pretty String
