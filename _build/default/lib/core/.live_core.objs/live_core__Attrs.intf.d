lib/core/attrs.mli: Ident Typ
