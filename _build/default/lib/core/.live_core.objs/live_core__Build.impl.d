lib/core/build.ml: Ast Eff Option Program Srcid State_typing Typ
