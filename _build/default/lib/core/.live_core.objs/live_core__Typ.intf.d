lib/core/typ.mli: Eff Format
