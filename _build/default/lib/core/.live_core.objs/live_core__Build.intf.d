lib/core/build.mli: Ast Eff Program Typ
