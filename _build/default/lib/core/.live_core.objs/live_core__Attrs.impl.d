lib/core/attrs.ml: Ident List Option Typ
