lib/core/eff.mli: Format
