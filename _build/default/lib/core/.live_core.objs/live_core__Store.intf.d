lib/core/store.mli: Ast Format Ident Program
