lib/core/prim.mli: Ast Eff Typ
