lib/core/boxcontent.mli: Ast Format Ident Srcid
