lib/core/fixup.mli: Ast Ident Program Store
