lib/core/subst.mli: Ast Ident
