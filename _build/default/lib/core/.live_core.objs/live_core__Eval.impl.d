lib/core/eval.ml: Ast Boxcontent Eff Event Fmt Fqueue List Option Prim Program Store Subst
