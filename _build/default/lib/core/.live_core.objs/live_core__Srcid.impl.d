lib/core/srcid.ml: Fmt Int Map Set
