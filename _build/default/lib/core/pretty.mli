(** Pretty-printing of calculus terms in the paper's notation, plus
    the display rendering of values ([post 42] shows ["42"]). *)

val pp_num : Format.formatter -> float -> unit
val string_of_num : float -> string
(** ["42"] rather than ["42."]; scientific notation for extremes. *)

val escape_string : string -> string

val pp_value : Format.formatter -> Ast.value -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit

val expr_to_string : Ast.expr -> string
val value_to_string : Ast.value -> string

val display_string : Ast.value -> string
(** How a posted value appears on the display: strings unquoted,
    numbers trimmed, tuples/lists in value syntax, functions as
    ["<fun>"]. *)
