(** System states [sigma = (C, D, S, P, Q)] (Fig. 7).

    - [code]    — the program [C];
    - [display] — [D]: either valid box content or the invalid marker
                  [⊥] ([Invalid]), meaning "needs re-render";
    - [store]   — [S], the global variables;
    - [stack]   — [P], the page stack; the top of the stack is the
                  {e last} element of the list, matching the paper's
                  convention of appending at the right end;
    - [queue]   — [Q], the pending events. *)

type display = Invalid | Shown of Boxcontent.t

type t = {
  code : Program.t;
  display : display;
  store : Store.t;
  stack : (Ident.page * Ast.value) list;
  queue : Event.t Fqueue.t;
}

(** The initial system state [(C, ⊥, eps, eps, eps)] (Sec. 4.2). *)
let initial (code : Program.t) : t =
  { code; display = Invalid; store = Store.empty; stack = []; queue = Fqueue.empty }

(** A state is stable when the event queue is empty and the page stack
    is non-empty (Sec. 4.2); stable states wait for user actions. *)
let is_stable (s : t) = Fqueue.is_empty s.queue && s.stack <> []

let display_valid (s : t) =
  match s.display with Invalid -> false | Shown _ -> true

let invalidate (s : t) : t = { s with display = Invalid }

(** Top of the page stack, if any. *)
let top_page (s : t) : (Ident.page * Ast.value) option =
  match List.rev s.stack with [] -> None | top :: _ -> Some top

let push_page (p : Ident.page) (v : Ast.value) (s : t) : t =
  { s with stack = s.stack @ [ (p, v) ] }

(** POP either removes the top page or does nothing on an empty stack
    (rule POP, Fig. 9). *)
let pop_page (s : t) : t =
  match List.rev s.stack with
  | [] -> s
  | _ :: rest -> { s with stack = List.rev rest }

let enqueue (q : Event.t) (s : t) : t =
  { s with queue = Fqueue.enqueue q s.queue }

let pp_display ppf = function
  | Invalid -> Fmt.string ppf "⊥"
  | Shown b -> Boxcontent.pp ppf b

let pp ppf (s : t) =
  Fmt.pf ppf
    "@[<v2>state {@,display = %a@,store = %a@,stack = [%a]@,queue = %a@]@,}"
    pp_display s.display Store.pp s.store
    Fmt.(
      list ~sep:(any "; ") (fun ppf (p, v) ->
          Fmt.pf ppf "(%s, %a)" p Pretty.pp_value v))
    s.stack
    (Fqueue.pp Event.pp) s.queue
