(** Primitive operations and their delta-rules.

    The paper treats arithmetic ([math->floor], [math->mod]), string
    operations ([||] concatenation, [count]) and conditionals as ambient
    library functions of TouchDevelop.  We realise them as primitive
    applications [Prim (name, type_args, args)] with

    - a typing function (consulted by {!Typecheck}), which also reports
      the {e latent} effect a primitive imposes on its context (only
      [cond], which applies its thunk arguments, is ever non-pure), and
    - a delta-rule (consulted by {!Eval}), which maps argument values to
      a result {e expression} — a plain value for almost all primitives;
      [cond] returns the application of the chosen thunk, which the
      evaluator then continues to reduce.  This is exactly the thunk
      encoding of conditionals that Sec. 4.1 describes.

    Partiality: [nth] and [head] on an empty list are the only stuck
    delta-rules (there is no value of an abstract element type to
    return).  The surface compiler only emits them behind emptiness
    guards, so compiled programs never get stuck; the metatheory tests
    exclude these two primitives from generated terms. *)

type signature = { ty : Typ.t; eff : Eff.t }

let ok ty = Ok { ty; eff = Eff.Pure }

let err fmt = Fmt.kstr (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Typing                                                              *)
(* ------------------------------------------------------------------ *)

let bad_args name = err "primitive %%%s applied to ill-typed arguments" name

(** [typing name targs argtys] returns the result type and required
    effect of the primitive, or an error if the instantiation is
    ill-typed. *)
let typing (name : string) (targs : Typ.t list) (argtys : Typ.t list) :
    (signature, string) result =
  let open Typ in
  match (name, targs, argtys) with
  (* arithmetic *)
  | ( ("add" | "sub" | "mul" | "div" | "mod" | "pow" | "min" | "max"),
      [],
      [ Num; Num ] ) ->
      ok Num
  | ( ( "neg" | "floor" | "ceil" | "round" | "abs" | "sqrt" | "exp" | "ln"
      | "not" ),
      [],
      [ Num ] ) ->
      ok Num
  | "rand2", [], [ Num; Num ] -> ok Num
  (* comparison; [eq]/[ne] are generic over arrow-free types *)
  | ("eq" | "ne"), [ t ], [ a; b ]
    when arrow_free t && sub a t && sub b t ->
      ok Num
  | ("lt" | "le" | "gt" | "ge"), [ Num ], [ Num; Num ] -> ok Num
  | ("lt" | "le" | "gt" | "ge"), [ Str ], [ Str; Str ] -> ok Num
  (* lazy conditional: cond<T>(c, then_thunk, else_thunk) *)
  | "cond", [ t ], [ Num; Fn (Tuple [], m1, r1); Fn (Tuple [], m2, r2) ]
    when sub r1 t && sub r2 t -> (
      match Eff.join m1 m2 with
      | Some eff -> Ok { ty = t; eff }
      | None ->
          err
            "conditional branches mix state and render effects (no such \
             join exists)")
  (* strings *)
  | "concat", [], [ Str; Str ] -> ok Str
  | "str_len", [], [ Str ] -> ok Num
  | "substr", [], [ Str; Num; Num ] -> ok Str
  | "str_index", [], [ Str; Str ] -> ok Num
  | "str_contains", [], [ Str; Str ] -> ok Num
  | "str_repeat", [], [ Str; Num ] -> ok Str
  | ("to_upper" | "to_lower" | "trim"), [], [ Str ] -> ok Str
  | "char_at", [], [ Str; Num ] -> ok Str
  | "str_of", [], [ Num ] -> ok Str
  | "num_of", [], [ Str ] -> ok Num
  | "fmt_fixed", [], [ Num; Num ] -> ok Str
  | ("pad_left" | "pad_right"), [], [ Str; Num; Str ] -> ok Str
  | "split", [], [ Str; Str ] -> ok (List Str)
  (* lists *)
  | "nil", [ t ], [] -> ok (List t)
  | "cons", [ t ], [ a; List b ] when sub a t && sub b t -> ok (List t)
  | "snoc", [ t ], [ List a; b ] when sub a t && sub b t -> ok (List t)
  | "append", [ t ], [ List a; List b ] when sub a t && sub b t ->
      ok (List t)
  | "len", [ t ], [ List a ] when sub a t -> ok Num
  | "is_empty", [ t ], [ List a ] when sub a t -> ok Num
  | "nth", [ t ], [ List a; Num ] when sub a t -> ok t
  | "head", [ t ], [ List a ] when sub a t -> ok t
  | ("tail" | "rev"), [ t ], [ List a ] when sub a t -> ok (List t)
  | ("take" | "drop"), [ t ], [ List a; Num ] when sub a t -> ok (List t)
  | "set_nth", [ t ], [ List a; Num; b ] when sub a t && sub b t ->
      ok (List t)
  | "range", [], [ Num; Num ] -> ok (List Num)
  | "list_contains", [ t ], [ List a; b ]
    when arrow_free t && sub a t && sub b t ->
      ok Num
  | "index_of", [ t ], [ List a; b ]
    when arrow_free t && sub a t && sub b t ->
      ok Num
  | ( ( "add" | "sub" | "mul" | "div" | "mod" | "pow" | "min" | "max"
      | "neg" | "floor" | "ceil" | "round" | "abs" | "sqrt" | "exp" | "ln"
      | "not" | "rand2" | "eq" | "ne" | "lt" | "le" | "gt" | "ge" | "cond"
      | "concat" | "str_len" | "substr" | "str_index" | "str_contains"
      | "str_repeat" | "to_upper" | "to_lower" | "trim" | "char_at"
      | "str_of" | "num_of" | "fmt_fixed" | "pad_left" | "pad_right"
      | "split" | "nil" | "cons" | "snoc" | "append" | "len" | "is_empty" | "nth"
      | "head" | "tail" | "rev" | "take" | "drop" | "set_nth" | "range"
      | "list_contains" | "index_of" ),
      _,
      _ ) ->
      bad_args name
  | _ -> err "unknown primitive %%%s" name

let all_names =
  [ "add"; "sub"; "mul"; "div"; "mod"; "pow"; "min"; "max"; "neg"; "floor";
    "ceil"; "round"; "abs"; "sqrt"; "exp"; "ln"; "not"; "rand2"; "eq"; "ne";
    "lt"; "le"; "gt"; "ge"; "cond"; "concat"; "str_len"; "substr";
    "str_index"; "str_contains"; "str_repeat"; "to_upper"; "to_lower";
    "trim"; "char_at"; "str_of"; "num_of"; "fmt_fixed"; "pad_left";
    "pad_right"; "split"; "nil"; "cons"; "snoc"; "append"; "len"; "is_empty";
    "nth";
    "head"; "tail"; "rev"; "take"; "drop"; "set_nth"; "range";
    "list_contains"; "index_of" ]

let exists name = List.mem name all_names

(* ------------------------------------------------------------------ *)
(* Delta rules                                                         *)
(* ------------------------------------------------------------------ *)

let num f = Ast.VNum f
let str s = Ast.VStr s
let vbool = Ast.vbool

let fclamp_index (f : float) ~len =
  let i = int_of_float f in
  if i < 0 then 0 else if i > len then len else i

(* Lexicographic/value comparison for the polymorphic orderings; only
   numbers and strings are admitted by [typing]. *)
let compare_prim (a : Ast.value) (b : Ast.value) : int option =
  match (a, b) with
  | Ast.VNum x, Ast.VNum y -> Some (Float.compare x y)
  | Ast.VStr x, Ast.VStr y -> Some (String.compare x y)
  | _ -> None

(* A deterministic hash-based pseudo-random source: [rand2 a b] is a
   pure function of its arguments, uniformly-ish in [0, 1).  It stands
   in for the nondeterministic inputs of the paper's demos (web data),
   keeping every run reproducible. *)
let rand2 (a : float) (b : float) : float =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix (x : int64) =
    let open Int64 in
    h := mul (logxor !h x) 0xBF58476D1CE4E5B9L;
    h := logxor !h (shift_right_logical !h 27)
  in
  mix (Int64.bits_of_float a);
  mix (Int64.bits_of_float b);
  mix 0x94D049BB133111EBL;
  let bits = Int64.shift_right_logical !h 11 in
  Int64.to_float bits /. 9007199254740992.0

let substr (s : string) (start : float) (len : float) : string =
  let n = String.length s in
  let i = fclamp_index start ~len:n in
  let l = int_of_float len in
  let l = if l < 0 then 0 else min l (n - i) in
  String.sub s i l

let find_sub (hay : string) (needle : string) : int =
  if needle = "" then 0
  else
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then -1
      else if String.sub hay i nn = needle then i
      else go (i + 1)
    in
    go 0

let split_on (s : string) (sep : string) : string list =
  if sep = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
  else
    let rec go acc s =
      match find_sub s sep with
      | -1 -> List.rev (s :: acc)
      | i ->
          let before = String.sub s 0 i in
          let after =
            String.sub s
              (i + String.length sep)
              (String.length s - i - String.length sep)
          in
          go (before :: acc) after
    in
    go [] s

let pad (side : [ `Left | `Right ]) s width fill =
  let w = int_of_float width in
  let fill = if fill = "" then " " else fill in
  let buf = Buffer.create (max w (String.length s)) in
  let missing = w - String.length s in
  if missing <= 0 then s
  else begin
    let padding = Buffer.create missing in
    while Buffer.length padding < missing do
      Buffer.add_string padding fill
    done;
    let padding = String.sub (Buffer.contents padding) 0 missing in
    (match side with
    | `Left ->
        Buffer.add_string buf padding;
        Buffer.add_string buf s
    | `Right ->
        Buffer.add_string buf s;
        Buffer.add_string buf padding);
    Buffer.contents buf
  end

let fmt_fixed (x : float) (digits : float) : string =
  let d = max 0 (min 12 (int_of_float digits)) in
  Printf.sprintf "%.*f" d x

(** [delta name targs args] computes the reduct of a fully-applied
    primitive.  Returns an expression: a value for strict primitives,
    or a residual application for [cond]. *)
let delta (name : string) (targs : Typ.t list) (args : Ast.value list) :
    (Ast.expr, string) result =
  let v x : (Ast.expr, string) result = Ok (Ast.Val x) in
  match (name, targs, args) with
  | "add", [], [ VNum a; VNum b ] -> v (num (a +. b))
  | "sub", [], [ VNum a; VNum b ] -> v (num (a -. b))
  | "mul", [], [ VNum a; VNum b ] -> v (num (a *. b))
  | "div", [], [ VNum a; VNum b ] -> v (num (a /. b))
  | "mod", [], [ VNum a; VNum b ] ->
      (* TouchDevelop's math->mod: result has the sign of the divisor *)
      let r = if b = 0.0 then Float.nan else Float.rem a b in
      let r = if r <> 0.0 && (r < 0.0) <> (b < 0.0) then r +. b else r in
      v (num r)
  | "pow", [], [ VNum a; VNum b ] -> v (num (Float.pow a b))
  | "min", [], [ VNum a; VNum b ] -> v (num (Float.min a b))
  | "max", [], [ VNum a; VNum b ] -> v (num (Float.max a b))
  | "neg", [], [ VNum a ] -> v (num (-.a))
  | "floor", [], [ VNum a ] -> v (num (Float.floor a))
  | "ceil", [], [ VNum a ] -> v (num (Float.ceil a))
  | "round", [], [ VNum a ] -> v (num (Float.round a))
  | "abs", [], [ VNum a ] -> v (num (Float.abs a))
  | "sqrt", [], [ VNum a ] -> v (num (Float.sqrt a))
  | "exp", [], [ VNum a ] -> v (num (Float.exp a))
  | "ln", [], [ VNum a ] -> v (num (Float.log a))
  | "not", [], [ VNum a ] -> v (vbool (a = 0.0))
  | "rand2", [], [ VNum a; VNum b ] -> v (num (rand2 a b))
  | "eq", [ _ ], [ a; b ] -> v (vbool (Ast.equal_value a b))
  | "ne", [ _ ], [ a; b ] -> v (vbool (not (Ast.equal_value a b)))
  | ("lt" | "le" | "gt" | "ge"), [ _ ], [ a; b ] -> (
      match compare_prim a b with
      | None -> err "ordering applied to non-ordered values"
      | Some c ->
          let r =
            match name with
            | "lt" -> c < 0
            | "le" -> c <= 0
            | "gt" -> c > 0
            | _ -> c >= 0
          in
          v (vbool r))
  | "cond", [ _ ], [ VNum c; t; f ] ->
      let thunk = if c <> 0.0 then t else f in
      Ok (Ast.App (Val thunk, Ast.eunit))
  | "concat", [], [ VStr a; VStr b ] -> v (str (a ^ b))
  | "str_len", [], [ VStr a ] -> v (num (float_of_int (String.length a)))
  | "substr", [], [ VStr s; VNum i; VNum l ] -> v (str (substr s i l))
  | "str_index", [], [ VStr s; VStr sub ] ->
      v (num (float_of_int (find_sub s sub)))
  | "str_contains", [], [ VStr s; VStr sub ] ->
      v (vbool (find_sub s sub >= 0))
  | "str_repeat", [], [ VStr s; VNum n ] ->
      let n = max 0 (int_of_float n) in
      let buf = Buffer.create (String.length s * n) in
      for _ = 1 to n do
        Buffer.add_string buf s
      done;
      v (str (Buffer.contents buf))
  | "to_upper", [], [ VStr s ] -> v (str (String.uppercase_ascii s))
  | "to_lower", [], [ VStr s ] -> v (str (String.lowercase_ascii s))
  | "trim", [], [ VStr s ] -> v (str (String.trim s))
  | "char_at", [], [ VStr s; VNum i ] ->
      let i = int_of_float i in
      if i >= 0 && i < String.length s then v (str (String.make 1 s.[i]))
      else v (str "")
  | "str_of", [], [ VNum a ] -> v (str (Pretty.string_of_num a))
  | "num_of", [], [ VStr s ] -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> v (num f)
      | None -> v (num Float.nan))
  | "fmt_fixed", [], [ VNum x; VNum d ] -> v (str (fmt_fixed x d))
  | "pad_left", [], [ VStr s; VNum w; VStr f ] -> v (str (pad `Left s w f))
  | "pad_right", [], [ VStr s; VNum w; VStr f ] -> v (str (pad `Right s w f))
  | "split", [], [ VStr s; VStr sep ] ->
      v (VList (Typ.Str, List.map str (split_on s sep)))
  | "nil", [ t ], [] -> v (VList (t, []))
  | "cons", [ t ], [ x; VList (_, xs) ] -> v (VList (t, x :: xs))
  | "snoc", [ t ], [ VList (_, xs); x ] -> v (VList (t, xs @ [ x ]))
  | "append", [ t ], [ VList (_, xs); VList (_, ys) ] ->
      v (VList (t, xs @ ys))
  | "len", [ _ ], [ VList (_, xs) ] ->
      v (num (float_of_int (List.length xs)))
  | "is_empty", [ _ ], [ VList (_, xs) ] -> v (vbool (xs = []))
  | "nth", [ _ ], [ VList (_, xs); VNum i ] -> (
      match List.nth_opt xs (int_of_float i) with
      | Some x -> v x
      | None -> err "nth: index %g out of bounds (length %d)" i
                  (List.length xs))
  | "head", [ _ ], [ VList (_, xs) ] -> (
      match xs with
      | x :: _ -> v x
      | [] -> err "head of empty list")
  | "tail", [ t ], [ VList (_, xs) ] ->
      v (VList (t, match xs with [] -> [] | _ :: tl -> tl))
  | "rev", [ t ], [ VList (_, xs) ] -> v (VList (t, List.rev xs))
  | "take", [ t ], [ VList (_, xs); VNum n ] ->
      let n = max 0 (int_of_float n) in
      v (VList (t, List.filteri (fun i _ -> i < n) xs))
  | "drop", [ t ], [ VList (_, xs); VNum n ] ->
      let n = max 0 (int_of_float n) in
      v (VList (t, List.filteri (fun i _ -> i >= n) xs))
  | "set_nth", [ t ], [ VList (_, xs); VNum i; x ] ->
      let i = int_of_float i in
      v (VList (t, List.mapi (fun j y -> if j = i then x else y) xs))
  | "range", [], [ VNum a; VNum b ] ->
      let a = int_of_float a and b = int_of_float b in
      let n = max 0 (b - a) in
      v (VList (Typ.Num, List.init n (fun i -> num (float_of_int (a + i)))))
  | "list_contains", [ _ ], [ VList (_, xs); x ] ->
      v (vbool (List.exists (Ast.equal_value x) xs))
  | "index_of", [ _ ], [ VList (_, xs); x ] ->
      let rec go i = function
        | [] -> -1
        | y :: _ when Ast.equal_value x y -> i
        | _ :: tl -> go (i + 1) tl
      in
      v (num (float_of_int (go 0 xs)))
  | _ -> err "primitive %%%s applied to ill-matched arguments" name
