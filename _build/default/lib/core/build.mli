(** A combinator eDSL for constructing core programs from OCaml —
    the programmatic counterpart of the surface language, used by
    tests, benchmarks and embedding hosts.  Nothing here extends the
    calculus; combinators produce plain {!Ast} terms. *)

(** {1 Literals and variables} *)

val n : float -> Ast.expr
val ni : int -> Ast.expr
val s : string -> Ast.expr
val b : bool -> Ast.expr
val unit_ : Ast.expr
val var : string -> Ast.expr
val get : string -> Ast.expr
val set : string -> Ast.expr -> Ast.expr

(** {1 Functions and binding} *)

val lam : string -> Typ.t -> Ast.expr -> Ast.expr
val thunk : Ast.expr -> Ast.expr
val app : Ast.expr -> Ast.expr -> Ast.expr
val call : string -> Ast.expr -> Ast.expr
val tuple : Ast.expr list -> Ast.expr
val proj : Ast.expr -> int -> Ast.expr

val let_ : string -> Typ.t -> Ast.expr -> Ast.expr -> Ast.expr
(** [(lambda(x:ty). body) e]. *)

val seq : ?ty:Typ.t -> Ast.expr -> Ast.expr -> Ast.expr
val seqs : ?ty:Typ.t -> Ast.expr list -> Ast.expr

val prim : ?targs:Typ.t list -> string -> Ast.expr list -> Ast.expr

val if_ : Typ.t -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr
(** The thunked conditional (the Sec. 4.1 encoding). *)

(** {1 Render and state constructs} *)

val boxed : ?id:int -> Ast.expr -> Ast.expr
val post : Ast.expr -> Ast.expr
val attr : string -> Ast.expr -> Ast.expr
val on_tap : Ast.expr -> Ast.expr
val push : string -> Ast.expr -> Ast.expr
val pop : Ast.expr

val str_of : Ast.expr -> Ast.expr

(** {1 Infix operators} (suffixed with [!] to avoid clobbering the
    float operators) *)
module Infix : sig
  val ( +! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( -! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( *! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( /! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( %! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( =! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( <! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( <=! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( >! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( >=! ) : Ast.expr -> Ast.expr -> Ast.expr
  val ( ^! ) : Ast.expr -> Ast.expr -> Ast.expr
end

(** {1 Definitions and programs} *)

val global : string -> Typ.t -> Ast.value -> Program.def

val func :
  string ->
  param:string * Typ.t ->
  ?eff:Eff.t ->
  ret:Typ.t ->
  Ast.expr ->
  Program.def

val page :
  string ->
  ?arg:string * Typ.t ->
  init:Ast.expr ->
  render:Ast.expr ->
  unit ->
  Program.def

val program : Program.def list -> (Program.t, string) result
(** Assemble and validate ([C |- C] plus the start-page condition). *)

val program_exn : Program.def list -> Program.t
