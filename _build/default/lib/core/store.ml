(** The store [S] (Fig. 7): values of global variables.

    The paper represents [S] as a sequence of key-value pairs with
    right-most occurrence winning; we use a persistent map, which is
    observationally identical.  A global that has never been written is
    absent from the store: rule EP-GLOBAL-2 (Fig. 8) reads such a
    global's initial value from the code.  Keeping the store partial in
    this way is load-bearing for code updates — a freshly added global
    immediately reads its declared initial value. *)

module M = Map.Make (String)

type t = Ast.value M.t

let empty : t = M.empty

(** Raw lookup: [Some v] iff the global has been assigned. *)
let find (g : Ident.global) (s : t) : Ast.value option = M.find_opt g s

(** The read semantics of EP-GLOBAL-1/2: assigned value, or the initial
    value from the program, or [None] if the global is not defined at
    all (a stuck read — cannot happen in well-typed states). *)
let read (prog : Program.t) (g : Ident.global) (s : t) : Ast.value option =
  match M.find_opt g s with
  | Some v -> Some v
  | None -> (
      match Program.find_global prog g with
      | Some (_, init) -> Some init
      | None -> None)

let write (g : Ident.global) (v : Ast.value) (s : t) : t = M.add g v s

let remove = M.remove
let bindings (s : t) = M.bindings s
let of_bindings bs = List.fold_left (fun m (g, v) -> M.add g v m) M.empty bs
let cardinal = M.cardinal
let mem = M.mem
let filter = M.filter
let equal (a : t) (b : t) = M.equal Ast.equal_value a b

let pp ppf (s : t) =
  Fmt.pf ppf "{@[%a@]}"
    Fmt.(
      list ~sep:(any ";@ ") (fun ppf (g, v) ->
          Fmt.pf ppf "%s -> %a" g Pretty.pp_value v))
    (bindings s)
