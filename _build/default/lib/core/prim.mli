(** Primitive operations and their delta-rules.

    The paper keeps arithmetic, string operations and conditionals
    ambient; here they are primitive applications
    [Prim (name, type_args, args)] with a typing function (consulted by
    {!Typecheck}) and a delta-rule (consulted by {!Eval}).

    Only [cond] imposes a non-pure effect on its context: it applies
    one of its thunk arguments, so its effect is the join of their
    latent effects — the thunk encoding of conditionals from Sec. 4.1.

    The only partial delta-rules are [head] and [nth] on an empty
    list; compiled loop code guards them and never gets stuck. *)

type signature = { ty : Typ.t; eff : Eff.t }

val typing :
  string -> Typ.t list -> Typ.t list -> (signature, string) result
(** [typing name targs argtys] — result type and required effect of
    the instantiation, or why it is ill-typed. *)

val delta :
  string -> Typ.t list -> Ast.value list -> (Ast.expr, string) result
(** Reduce a fully-applied primitive.  Returns an expression: a value
    for strict primitives, a residual application for [cond]. *)

val all_names : string list
val exists : string -> bool

val rand2 : float -> float -> float
(** The deterministic pseudo-random source behind the [rand] builtin:
    a pure hash of its arguments in [0, 1).  Stands in for the
    nondeterministic inputs of the paper's demos (web data). *)
