let placeholder () = ()
