(** Typing of system states (Fig. 11): [C |- C], [C |- D], [C |- S],
    [C |- P], [C |- Q] and the top-level T-SYS. *)

val check_code : Program.t -> (unit, string) result
(** [C |- C]: distinct names; arrow-free globals/page arguments with
    well-typed initial values; function and page bodies typed at their
    declared types and effects.  The premise of UPDATE (Fig. 9). *)

val check_start : Program.t -> (unit, string) result
(** T-SYS's extra premise: a parameterless [start] page exists. *)

val check_display : Program.t -> State.display -> (unit, string) result
val check_store : Program.t -> Store.t -> (unit, string) result

val check_stack :
  Program.t -> (Ident.page * Ast.value) list -> (unit, string) result

val check_queue : Program.t -> Event.t Fqueue.t -> (unit, string) result

val check_state : State.t -> (unit, string) result
(** [|- (C, D, S, P, Q)]. *)
