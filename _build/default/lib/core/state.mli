(** System states [sigma = (C, D, S, P, Q)] (Fig. 7). *)

type display =
  | Invalid  (** the paper's [⊥]: stale, awaiting RENDER *)
  | Shown of Boxcontent.t

type t = {
  code : Program.t;  (** C *)
  display : display;  (** D *)
  store : Store.t;  (** S *)
  stack : (Ident.page * Ast.value) list;  (** P; top = last element *)
  queue : Event.t Fqueue.t;  (** Q *)
}

val initial : Program.t -> t
(** [(C, ⊥, eps, eps, eps)] — the initial system state (Sec. 4.2). *)

val is_stable : t -> bool
(** Empty queue and non-empty stack: waiting for user actions. *)

val display_valid : t -> bool
val invalidate : t -> t

val top_page : t -> (Ident.page * Ast.value) option
val push_page : Ident.page -> Ast.value -> t -> t

val pop_page : t -> t
(** Pops the top page; no-op on the empty stack (rule POP). *)

val enqueue : Event.t -> t -> t

val pp_display : Format.formatter -> display -> unit
val pp : Format.formatter -> t -> unit
