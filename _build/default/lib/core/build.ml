(** A combinator eDSL for constructing core programs from OCaml.

    The surface language is the human-facing way to write programs;
    this module is the programmatic one — used by tests, benchmarks
    and hosts that embed the runtime and want to synthesise UI
    programs without going through text.  Combinators produce plain
    {!Ast} terms; nothing here extends the calculus.

    Conventions:
    - [let_ x ty e body] is the standard encoding
      [(lambda(x:ty). body) e];
    - [seq] chains unit-valued expressions;
    - [if_] uses the thunked [cond] primitive (the Sec. 4.1 encoding);
    - numeric literals lift with [n], strings with [s], booleans with
      [b];
    - infix helpers live in {!Infix} ([+.], [=.], ... all suffixed
      with [!] to avoid clobbering the float operators).

    Programs built here are ordinary code: run them through
    {!State_typing.check_code} (or {!program}, which does it for you)
    and hand them to {!Machine.boot}. *)

let n (f : float) : Ast.expr = Ast.Val (Ast.VNum f)
let ni (i : int) : Ast.expr = n (float_of_int i)
let s (x : string) : Ast.expr = Ast.Val (Ast.VStr x)
let b (x : bool) : Ast.expr = Ast.Val (Ast.vbool x)
let unit_ : Ast.expr = Ast.eunit

let var (x : string) : Ast.expr = Ast.Var x
let get (g : string) : Ast.expr = Ast.Get g
let set (g : string) (e : Ast.expr) : Ast.expr = Ast.Set (g, e)

let lam (x : string) (ty : Typ.t) (body : Ast.expr) : Ast.expr =
  Ast.Val (Ast.VLam (x, ty, body))

let thunk (body : Ast.expr) : Ast.expr = lam "_" Typ.unit_ body

let app (f : Ast.expr) (arg : Ast.expr) : Ast.expr = Ast.App (f, arg)
let call (f : string) (arg : Ast.expr) : Ast.expr = Ast.App (Ast.Fn f, arg)

let tuple (es : Ast.expr list) : Ast.expr = Ast.Tuple es
let proj (e : Ast.expr) (i : int) : Ast.expr = Ast.Proj (e, i)

let let_ (x : string) (ty : Typ.t) (e : Ast.expr) (body : Ast.expr) :
    Ast.expr =
  app (lam x ty body) e

(** [seq ~ty e1 e2] evaluates [e1] for effect, then [e2].  [ty] is
    [e1]'s type (defaults to unit, the common case). *)
let seq ?(ty = Typ.unit_) (e1 : Ast.expr) (e2 : Ast.expr) : Ast.expr =
  let_ "_" ty e1 e2

let rec seqs ?(ty = Typ.unit_) (es : Ast.expr list) : Ast.expr =
  match es with
  | [] -> unit_
  | [ e ] -> e
  | e :: rest -> seq ~ty e (seqs ~ty rest)

let prim ?(targs = []) (name : string) (args : Ast.expr list) : Ast.expr =
  Ast.Prim (name, targs, args)

(** The thunked conditional: [if_ ty c th el]. *)
let if_ (ty : Typ.t) (c : Ast.expr) (th : Ast.expr) (el : Ast.expr) :
    Ast.expr =
  prim "cond" ~targs:[ ty ] [ c; thunk th; thunk el ]

(* -- render constructs ---------------------------------------------- *)

let boxed ?id (body : Ast.expr) : Ast.expr =
  Ast.Boxed (Option.map Srcid.of_int id, body)

let post (e : Ast.expr) : Ast.expr = Ast.Post e
let attr (a : string) (e : Ast.expr) : Ast.expr = Ast.SetAttr (a, e)

let on_tap (handler_body : Ast.expr) : Ast.expr =
  attr "ontap" (lam "_" Typ.unit_ handler_body)

(* -- state constructs ------------------------------------------------ *)

let push (p : string) (arg : Ast.expr) : Ast.expr = Ast.Push (p, arg)
let pop : Ast.expr = Ast.Pop

(* -- arithmetic / comparison / strings ------------------------------- *)

module Infix = struct
  let ( +! ) a b = prim "add" [ a; b ]
  let ( -! ) a b = prim "sub" [ a; b ]
  let ( *! ) a b = prim "mul" [ a; b ]
  let ( /! ) a b = prim "div" [ a; b ]
  let ( %! ) a b = prim "mod" [ a; b ]
  let ( =! ) a b = prim "eq" ~targs:[ Typ.Num ] [ a; b ]
  let ( <! ) a b = prim "lt" ~targs:[ Typ.Num ] [ a; b ]
  let ( <=! ) a b = prim "le" ~targs:[ Typ.Num ] [ a; b ]
  let ( >! ) a b = prim "gt" ~targs:[ Typ.Num ] [ a; b ]
  let ( >=! ) a b = prim "ge" ~targs:[ Typ.Num ] [ a; b ]
  let ( ^! ) a b = prim "concat" [ a; b ]
end

let str_of (e : Ast.expr) : Ast.expr = prim "str_of" [ e ]

(* -- definitions ------------------------------------------------------ *)

let global (name : string) (ty : Typ.t) (init : Ast.value) : Program.def =
  Program.Global { name; ty; init }

let func (name : string) ~(param : string * Typ.t) ?(eff = Eff.Pure)
    ~(ret : Typ.t) (body : Ast.expr) : Program.def =
  let x, dom = param in
  Program.Func { name; ty = Typ.Fn (dom, eff, ret); body = lam x dom body }

(** A page; bodies receive the page argument as the named parameter. *)
let page (name : string) ?(arg = ("_", Typ.unit_)) ~(init : Ast.expr)
    ~(render : Ast.expr) () : Program.def =
  let x, arg_ty = arg in
  Program.Page { name; arg_ty; init = lam x arg_ty init; render = lam x arg_ty render }

(** Assemble and validate.  Returns the well-formedness error rather
    than booting a broken program. *)
let program (defs : Program.def list) : (Program.t, string) result =
  let p = Program.of_defs defs in
  match State_typing.check_code p with
  | Ok () -> (
      match State_typing.check_start p with
      | Ok () -> Ok p
      | Error m -> Error m)
  | Error m -> Error m

let program_exn (defs : Program.def list) : Program.t =
  match program defs with
  | Ok p -> p
  | Error m -> invalid_arg ("Build.program: " ^ m)
