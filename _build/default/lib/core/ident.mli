(** Identifier classes of the calculus (Fig. 6). *)

type global = string
type func = string
type page = string
type attr = string
type var = string

val start_page : page
(** The distinguished ["start"] page required by T-SYS (Fig. 11). *)

val fresh : string -> string
(** Fresh compiler-internal names (loop functions, temporaries); the
    result contains ['$'], which the surface lexer rejects, so user
    code can never collide with it. *)

val reset_fresh : unit -> unit
(** Restart the fresh-name counter — called once per compilation so
    that recompiling identical source yields identical programs. *)

val is_generated : string -> bool
