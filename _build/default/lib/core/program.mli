(** Program code [C] (Fig. 7): globals, functions and pages, with
    O(1) lookup by name. *)

type def =
  | Global of { name : Ident.global; ty : Typ.t; init : Ast.value }
      (** [global g : tau = v] *)
  | Func of { name : Ident.func; ty : Typ.t; body : Ast.expr }
      (** [fun f : tau is e]; [ty] is the declared arrow type *)
  | Page of {
      name : Ident.page;
      arg_ty : Typ.t;
      init : Ast.expr;  (** typed [tau -s-> ()] by T-C-PAGE *)
      render : Ast.expr;  (** typed [tau -r-> ()] by T-C-PAGE *)
    }

type t

val of_defs : def list -> t
val empty : t
val defs : t -> def list
val def_name : def -> string

val find : t -> string -> def option
val mem : t -> string -> bool

val find_global : t -> Ident.global -> (Typ.t * Ast.value) option
val find_func : t -> Ident.func -> (Typ.t * Ast.expr) option

val find_page : t -> Ident.page -> (Typ.t * Ast.expr * Ast.expr) option
(** [C(p) = (tau, f_i, f_r)] — the paper's page-lookup shorthand. *)

val globals : t -> (Ident.global * Typ.t * Ast.value) list
val functions : t -> (Ident.func * Typ.t * Ast.expr) list
val pages : t -> (Ident.page * Typ.t * Ast.expr * Ast.expr) list

val with_def : t -> def -> t
(** Replace (by name) or append one definition — the editor's
    building block for producing the next program version. *)

val without_def : t -> string -> t

val pp_def : Format.formatter -> def -> unit
val pp : Format.formatter -> t -> unit
