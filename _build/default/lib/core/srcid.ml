(** Source identities for [boxed] statements.

    The formal model does not need them, but the implementation's
    UI-Code Navigation feature (Sec. 3) requires a bidirectional mapping
    between boxes in the live view and the boxed statements that created
    them.  The surface compiler stamps every [boxed] expression with a
    unique id; rendering copies the id onto the produced box. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Fmt.int
let to_int (t : t) = t
let of_int (i : int) : t = i

module Map = Map.Make (Int)
module Set = Set.Make (Int)
