(** Types [tau] of the calculus (Fig. 6):
    numbers, strings, tuples (the empty tuple is unit), functions with
    a latent effect, and one documented extension — homogeneous lists.

    The [->]-free fragment ({!arrow_free}) is the storable fragment:
    globals and page arguments must live in it (T-C-GLOBAL, T-C-PAGE,
    Fig. 11), which is what guarantees no closure survives a code
    update. *)

type t =
  | Num
  | Str
  | Tuple of t list
  | Fn of t * Eff.t * t  (** [tau1 -mu-> tau2] *)
  | List of t

val unit_ : t
(** The unit type [()], i.e. [Tuple []]. *)

val handler : t
(** The type of event handlers, [() -s-> ()] (the paper's
    [Gamma_a(ontap)]). *)

val equal : t -> t -> bool

val sub : t -> t -> bool
(** Subtyping induced by T-SUB: latent effects may grow ([Eff.sub]),
    closed under the usual structural variance. *)

val arrow_free : t -> bool
(** The side condition of T-C-GLOBAL / T-C-PAGE. *)

val size : t -> int
(** Size of the type term (generation budgets and shrinking). *)

val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> t -> unit
val to_string : t -> string
