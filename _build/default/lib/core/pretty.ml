(** Pretty-printing of calculus terms in the paper's notation.

    Used by error messages, the CLI's [--dump-core] mode, and the test
    suite's golden files.  The printer is not required to be re-parsable
    (the surface language has its own {!Live_surface.Printer}); it aims
    at readability of core terms. *)

let pp_num ppf (f : float) =
  if Float.is_integer f && Float.abs f < 1e15 then
    Fmt.pf ppf "%d" (int_of_float f)
  else Fmt.pf ppf "%g" f

(** Render a number the way the UI does ([post 42] shows ["42"], not
    ["42."]). *)
let string_of_num (f : float) = Fmt.str "%a" pp_num f

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_value ppf (v : Ast.value) =
  match v with
  | VNum f -> pp_num ppf f
  | VStr s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | VTuple vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_value) vs
  | VLam (x, t, e) ->
      Fmt.pf ppf "@[<2>\\(%s : %a).@ %a@]" x Typ.pp t pp_expr e
  | VList (_, vs) ->
      Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_value) vs

and pp_expr ppf (e : Ast.expr) =
  match e with
  | Val v -> pp_value ppf v
  | Var x -> Fmt.string ppf x
  | Tuple es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_expr) es
  | App (e1, e2) -> Fmt.pf ppf "@[<2>%a@ %a@]" pp_app e1 pp_atom e2
  | Fn f -> Fmt.pf ppf "#%s" f
  | Proj (e, n) -> Fmt.pf ppf "%a.%d" pp_atom e n
  | Get g -> Fmt.pf ppf "$%s" g
  | Set (g, e) -> Fmt.pf ppf "@[<2>$%s :=@ %a@]" g pp_expr e
  | Push (p, e) -> Fmt.pf ppf "@[<2>push %s@ %a@]" p pp_atom e
  | Pop -> Fmt.string ppf "pop"
  | Boxed (None, e) -> Fmt.pf ppf "@[<2>boxed@ %a@]" pp_atom e
  | Boxed (Some id, e) ->
      Fmt.pf ppf "@[<2>boxed@%a@ %a@]" Srcid.pp id pp_atom e
  | Post e -> Fmt.pf ppf "@[<2>post@ %a@]" pp_atom e
  | SetAttr (a, e) -> Fmt.pf ppf "@[<2>box.%s :=@ %a@]" a pp_expr e
  | Prim (name, [], es) ->
      Fmt.pf ppf "@[<2>%%%s(%a)@]" name Fmt.(list ~sep:(any ", ") pp_expr) es
  | Prim (name, ts, es) ->
      Fmt.pf ppf "@[<2>%%%s<%a>(%a)@]" name
        Fmt.(list ~sep:(any ", ") Typ.pp)
        ts
        Fmt.(list ~sep:(any ", ") pp_expr)
        es

and pp_atom ppf e =
  match e with
  | Val (VLam _) | App _ | Set _ | Push _ | Post _ | SetAttr _ | Boxed _ ->
      Fmt.pf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

and pp_app ppf e =
  match e with
  | Val (VLam _) | Set _ | Push _ | Post _ | SetAttr _ | Boxed _ ->
      Fmt.pf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

let expr_to_string e = Fmt.str "@[%a@]" pp_expr e
let value_to_string v = Fmt.str "@[%a@]" pp_value v

(** How a posted value appears on the display: strings show their
    contents (unquoted), numbers are trimmed of trailing [.], tuples
    and lists are shown in value syntax. *)
let rec display_string (v : Ast.value) =
  match v with
  | VStr s -> s
  | VNum f -> string_of_num f
  | VTuple vs ->
      "(" ^ String.concat ", " (List.map display_string vs) ^ ")"
  | VList (_, vs) ->
      "[" ^ String.concat ", " (List.map display_string vs) ^ "]"
  | VLam _ -> "<fun>"
