(** Identities of [boxed] statements, stamped by the surface compiler
    and copied onto the boxes they create — the data behind UI-Code
    Navigation (Sec. 3). *)

type t

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
