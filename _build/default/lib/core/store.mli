(** The store [S] (Fig. 7): values of assigned global variables.

    The store is {e partial}: a global never written is absent, and
    reads fall back to the initial value declared in the code
    (EP-GLOBAL-2) — which is also how a freshly added global gets its
    value after a code update. *)

type t

val empty : t

val find : Ident.global -> t -> Ast.value option
(** Raw lookup: [Some v] iff assigned. *)

val read : Program.t -> Ident.global -> t -> Ast.value option
(** The read semantics of EP-GLOBAL-1/2: assigned value, else the
    declared initial value, else [None] (undefined global — stuck). *)

val write : Ident.global -> Ast.value -> t -> t
val remove : Ident.global -> t -> t
val mem : Ident.global -> t -> bool
val cardinal : t -> int
val bindings : t -> (Ident.global * Ast.value) list
val of_bindings : (Ident.global * Ast.value) list -> t
val filter : (Ident.global -> Ast.value -> bool) -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
