(** The type and effect system for expressions (Fig. 10):

    {v
      C; Gamma |-mu e : tau
    v}

    The paper's rules are declarative; the algorithmic presentation
    here computes, for each expression, its type together with the
    {e least} effect under which it can be typed.  The effect order
    (Pure below State and Render, which are incomparable) has binary
    joins except for [State]/[Render] — exactly the pairs rule T-SUB
    can reconcile.  An expression [e] then types under [mu] iff
    [least_effect(e) <= mu]; this is equivalent to the declarative
    system and gives principal latent effects to lambdas (T-LAM's
    [mu_1] is chosen minimally, and T-SUB recovers all larger
    choices). *)

type gamma = (Ident.var * Typ.t) list

let empty_gamma : gamma = []

type answer = { ty : Typ.t; eff : Eff.t }

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun s -> Error s) fmt

let join_eff (a : Eff.t) (b : Eff.t) : (Eff.t, string) result =
  match Eff.join a b with
  | Some e -> Ok e
  | None ->
      err
        "expression mixes state and render effects: the model-view \
         separation admits no join of '%s' and '%s'" (Eff.name a)
        (Eff.name b)

let rec joins = function
  | [] -> Ok Eff.Pure
  | [ e ] -> Ok e
  | e :: rest ->
      let* r = joins rest in
      join_eff e r

(** [infer prog gamma e] — type and least effect of [e], or an error. *)
let rec infer (prog : Program.t) (gamma : gamma) (e : Ast.expr) :
    (answer, string) result =
  match e with
  | Ast.Val v -> infer_value prog gamma v
  | Ast.Var x -> (
      (* T-VAR *)
      match List.assoc_opt x gamma with
      | Some ty -> Ok { ty; eff = Eff.Pure }
      | None -> err "unbound variable %s" x)
  | Ast.Tuple es ->
      (* T-TUPLE *)
      let* answers = infer_all prog gamma es in
      let* eff = joins (List.map (fun a -> a.eff) answers) in
      Ok { ty = Typ.Tuple (List.map (fun a -> a.ty) answers); eff }
  | Ast.App (e1, e2) -> (
      (* T-APP with T-SUB folded in: the function's latent effect joins
         into the application's effect *)
      let* f = infer prog gamma e1 in
      let* a = infer prog gamma e2 in
      match f.ty with
      | Typ.Fn (dom, latent, cod) ->
          if not (Typ.sub a.ty dom) then
            err "argument type %s does not match parameter type %s"
              (Typ.to_string a.ty) (Typ.to_string dom)
          else
            let* eff = joins [ f.eff; a.eff; latent ] in
            Ok { ty = cod; eff }
      | ty -> err "application of a non-function (type %s)" (Typ.to_string ty)
      )
  | Ast.Fn f -> (
      (* T-FUN: the declared type from C *)
      match Program.find_func prog f with
      | Some (ty, _) -> Ok { ty; eff = Eff.Pure }
      | None -> err "undefined function %s" f)
  | Ast.Proj (e1, n) -> (
      (* T-PROJ *)
      let* a = infer prog gamma e1 in
      match a.ty with
      | Typ.Tuple ts -> (
          match List.nth_opt ts (n - 1) with
          | Some ty -> Ok { ty; eff = a.eff }
          | None ->
              err "projection .%d out of range for %s" n
                (Typ.to_string a.ty))
      | ty -> err "projection from non-tuple type %s" (Typ.to_string ty))
  | Ast.Get g -> (
      (* T-GLOBAL *)
      match Program.find_global prog g with
      | Some (ty, _) -> Ok { ty; eff = Eff.Pure }
      | None -> err "undefined global %s" g)
  | Ast.Set (g, e1) -> (
      (* T-ASSIGN: requires the state effect *)
      match Program.find_global prog g with
      | None -> err "assignment to undefined global %s" g
      | Some (ty, _) ->
          let* a = infer prog gamma e1 in
          if not (Typ.sub a.ty ty) then
            err "cannot assign %s to global %s : %s" (Typ.to_string a.ty) g
              (Typ.to_string ty)
          else
            let* eff = join_eff a.eff Eff.State in
            Ok { ty = Typ.unit_; eff })
  | Ast.Push (p, e1) -> (
      (* T-PUSH *)
      match Program.find_page prog p with
      | None -> err "push of undefined page %s" p
      | Some (arg_ty, _, _) ->
          let* a = infer prog gamma e1 in
          if not (Typ.sub a.ty arg_ty) then
            err "page %s expects argument type %s, got %s" p
              (Typ.to_string arg_ty) (Typ.to_string a.ty)
          else
            let* eff = join_eff a.eff Eff.State in
            Ok { ty = Typ.unit_; eff })
  | Ast.Pop ->
      (* T-POP *)
      Ok { ty = Typ.unit_; eff = Eff.State }
  | Ast.Boxed (_, e1) ->
      (* T-BOXED *)
      let* a = infer prog gamma e1 in
      let* eff = join_eff a.eff Eff.Render in
      Ok { ty = a.ty; eff }
  | Ast.Post e1 ->
      (* T-POST *)
      let* a = infer prog gamma e1 in
      let* eff = join_eff a.eff Eff.Render in
      Ok { ty = Typ.unit_; eff }
  | Ast.SetAttr (attr, e1) -> (
      (* T-ATTR: the attribute environment Gamma_a fixes the type *)
      match Attrs.lookup attr with
      | None -> err "unknown box attribute %s" attr
      | Some ty ->
          let* a = infer prog gamma e1 in
          if not (Typ.sub a.ty ty) then
            err "attribute %s expects %s, got %s" attr (Typ.to_string ty)
              (Typ.to_string a.ty)
          else
            let* eff = join_eff a.eff Eff.Render in
            Ok { ty = Typ.unit_; eff })
  | Ast.Prim (name, targs, es) ->
      let* answers = infer_all prog gamma es in
      let* sg = Prim.typing name targs (List.map (fun a -> a.ty) answers) in
      let* eff = joins (sg.Prim.eff :: List.map (fun a -> a.eff) answers) in
      Ok { ty = sg.Prim.ty; eff }

and infer_all prog gamma es =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
        let* a = infer prog gamma e in
        go (a :: acc) rest
  in
  go [] es

and infer_value (prog : Program.t) (gamma : gamma) (v : Ast.value) :
    (answer, string) result =
  match v with
  | Ast.VNum _ -> Ok { ty = Typ.Num; eff = Eff.Pure } (* T-INT *)
  | Ast.VStr _ -> Ok { ty = Typ.Str; eff = Eff.Pure } (* T-STRING *)
  | Ast.VTuple vs ->
      let rec go acc = function
        | [] -> Ok (Typ.Tuple (List.rev acc))
        | v :: rest ->
            let* a = infer_value prog gamma v in
            go (a.ty :: acc) rest
      in
      let* ty = go [] vs in
      Ok { ty; eff = Eff.Pure }
  | Ast.VLam (x, dom, body) ->
      (* T-LAM: the latent effect is the least effect of the body *)
      let* b = infer prog ((x, dom) :: gamma) body in
      Ok { ty = Typ.Fn (dom, b.eff, b.ty); eff = Eff.Pure }
  | Ast.VList (elt, vs) ->
      let rec go = function
        | [] -> Ok ()
        | v :: rest ->
            let* a = infer_value prog gamma v in
            if Typ.sub a.ty elt then go rest
            else
              err "list element type %s does not match %s"
                (Typ.to_string a.ty) (Typ.to_string elt)
      in
      let* () = go vs in
      Ok { ty = Typ.List elt; eff = Eff.Pure }

(** [check prog gamma mu e tau]: the paper's judgment
    [C; Gamma |-mu e : tau] — [e]'s least effect is below [mu] and its
    type is a subtype of [tau]. *)
let check (prog : Program.t) (gamma : gamma) (mu : Eff.t) (e : Ast.expr)
    (tau : Typ.t) : (unit, string) result =
  let* a = infer prog gamma e in
  if not (Eff.sub a.eff mu) then
    err "expression requires effect '%s' but context allows '%s'"
      (Eff.name a.eff) (Eff.name mu)
  else if not (Typ.sub a.ty tau) then
    err "expression has type %s, expected %s" (Typ.to_string a.ty)
      (Typ.to_string tau)
  else Ok ()

(** [infer_at prog gamma mu e]: type of [e] under effect bound [mu]. *)
let infer_at (prog : Program.t) (gamma : gamma) (mu : Eff.t) (e : Ast.expr) :
    (Typ.t, string) result =
  let* a = infer prog gamma e in
  if not (Eff.sub a.eff mu) then
    err "expression requires effect '%s' but context allows '%s'"
      (Eff.name a.eff) (Eff.name mu)
  else Ok a.ty

(** Convenience used by Fig. 11/12 rules: a closed value checks against
    a type ([C; eps |-s v : tau]; for values the effect is irrelevant,
    values type under every effect). *)
let check_value (prog : Program.t) (v : Ast.value) (tau : Typ.t) : bool =
  match infer_value prog empty_gamma v with
  | Ok a -> Typ.sub a.ty tau
  | Error _ -> false
