(** The attribute environment [Gamma_a] (Sec. 4.3): types for box
    attributes.  The paper names [ontap : () -s-> ()] and
    [margin : number]; we add the attributes its screenshots and
    improvements use (background colors, font size, layout direction,
    ...).  The set is fixed per build — rule T-ATTR (Fig. 10) consults
    this table. *)

let handler_ty = Typ.handler

let all : (Ident.attr * Typ.t) list =
  [
    (* event handlers *)
    ("ontap", handler_ty);
    (* box geometry *)
    ("margin", Typ.Num);
    ("padding", Typ.Num);
    ("width", Typ.Num);
    ("height", Typ.Num);
    ("border", Typ.Num);
    (* layout *)
    ("direction", Typ.Str);  (* "vertical" (default) | "horizontal" *)
    ("align", Typ.Str);  (* "left" | "center" | "right" *)
    (* styling *)
    ("background", Typ.Str);
    ("color", Typ.Str);
    ("fontsize", Typ.Num);
    ("bold", Typ.Num);
  ]

let lookup (a : Ident.attr) : Typ.t option = List.assoc_opt a all

let exists a = Option.is_some (lookup a)

let names = List.map fst all
