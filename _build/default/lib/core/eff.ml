(** Effects [mu ::= p | r | s] (Fig. 6).

    [Pure] code neither writes the store nor emits boxes; [State] code
    may write globals and push/pop pages; [Render] code may emit boxes
    and set attributes.  The sub-effect order has [Pure] below both
    [State] and [Render], which are incomparable — this is the lattice
    implicit in rule T-SUB (Fig. 10), which lets a [p]-latent function
    be used at any effect. *)

type t = Pure | State | Render

let equal (a : t) (b : t) = a = b

(** [sub a b] holds iff effect [a] may be used where [b] is expected. *)
let sub a b =
  match (a, b) with
  | Pure, _ -> true
  | State, State -> true
  | Render, Render -> true
  | (State | Render), _ -> false

(** Least upper bound, when it exists.  [State] and [Render] have no
    join: code that both writes the store and emits boxes is the
    model-view violation the system is designed to reject. *)
let join a b =
  match (a, b) with
  | Pure, x | x, Pure -> Some x
  | State, State -> Some State
  | Render, Render -> Some Render
  | State, Render | Render, State -> None

let to_string = function Pure -> "p" | State -> "s" | Render -> "r"
let pp ppf t = Fmt.string ppf (to_string t)

let name = function
  | Pure -> "pure"
  | State -> "state"
  | Render -> "render"
