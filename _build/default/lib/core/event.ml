(** Events [q] (Fig. 7):

    {v
      q ::= [exec v] | [push p v] | [pop]
    v}

    [Exec] carries a unit-to-unit thunk of effect [s] (a tap handler);
    [Push] carries a page name and its argument value; [Pop] removes
    the top page. *)

type t =
  | Exec of Ast.value  (** [[exec v]], [v : () -s-> ()] *)
  | Push of Ident.page * Ast.value  (** [[push p v]] *)
  | Pop  (** [[pop]] *)

let equal a b =
  match (a, b) with
  | Exec v1, Exec v2 -> Ast.equal_value v1 v2
  | Push (p1, v1), Push (p2, v2) -> String.equal p1 p2 && Ast.equal_value v1 v2
  | Pop, Pop -> true
  | (Exec _ | Push _ | Pop), _ -> false

let pp ppf = function
  | Exec v -> Fmt.pf ppf "[exec %a]" Pretty.pp_value v
  | Push (p, v) -> Fmt.pf ppf "[push %s %a]" p Pretty.pp_value v
  | Pop -> Fmt.string ppf "[pop]"
