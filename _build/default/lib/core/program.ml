(** Program code [C] (Fig. 7): a sequence of definitions

    {v
      d ::= global g : tau = v
          | fun f : tau is e
          | page p(tau) init e1 render e2
    v}

    Lookup is by name; T-C-* (Fig. 11) requires all defined names to be
    distinct across the three namespaces (the paper uses a single
    [Defs(C)] set), which {!State_typing.check_code} enforces.  We keep
    the definition list ordered (to reproduce source order in printing)
    and index it with a hashtable for O(1) lookup. *)

type def =
  | Global of { name : Ident.global; ty : Typ.t; init : Ast.value }
  | Func of { name : Ident.func; ty : Typ.t; body : Ast.expr }
      (** [ty] is the declared arrow type [tau1 -mu-> tau2] *)
  | Page of {
      name : Ident.page;
      arg_ty : Typ.t;
      init : Ast.expr;  (** typed [tau -s-> ()] by T-C-PAGE *)
      render : Ast.expr;  (** typed [tau -r-> ()] by T-C-PAGE *)
    }

type t = { defs : def list; index : (string, def) Hashtbl.t }

let def_name = function
  | Global { name; _ } | Func { name; _ } | Page { name; _ } -> name

let of_defs (defs : def list) : t =
  let index = Hashtbl.create (max 16 (List.length defs)) in
  (* Later definitions shadow earlier ones for lookup purposes; the
     well-formedness check rejects duplicates anyway. *)
  List.iter (fun d -> Hashtbl.replace index (def_name d) d) defs;
  { defs; index }

let empty = of_defs []

let defs t = t.defs

let find (t : t) (name : string) : def option = Hashtbl.find_opt t.index name

let find_global (t : t) (g : Ident.global) =
  match find t g with
  | Some (Global { ty; init; _ }) -> Some (ty, init)
  | _ -> None

let find_func (t : t) (f : Ident.func) =
  match find t f with
  | Some (Func { ty; body; _ }) -> Some (ty, body)
  | _ -> None

(** [C(p) = (f_i, f_r)] — the paper's shorthand for page lookup. *)
let find_page (t : t) (p : Ident.page) =
  match find t p with
  | Some (Page { arg_ty; init; render; _ }) -> Some (arg_ty, init, render)
  | _ -> None

let mem t name = Hashtbl.mem t.index name

let globals t =
  List.filter_map
    (function Global { name; ty; init } -> Some (name, ty, init) | _ -> None)
    t.defs

let functions t =
  List.filter_map
    (function Func { name; ty; body } -> Some (name, ty, body) | _ -> None)
    t.defs

let pages t =
  List.filter_map
    (function
      | Page { name; arg_ty; init; render } -> Some (name, arg_ty, init, render)
      | _ -> None)
    t.defs

(** Replace or add a single definition — the building block of the
    editor's incremental code updates (the UPDATE transition itself
    swaps whole programs; the editor produces the new program by
    editing one definition). *)
let with_def (t : t) (d : def) : t =
  let name = def_name d in
  let replaced = ref false in
  let defs =
    List.map
      (fun d0 ->
        if String.equal (def_name d0) name then begin
          replaced := true;
          d
        end
        else d0)
      t.defs
  in
  let defs = if !replaced then defs else defs @ [ d ] in
  of_defs defs

let without_def (t : t) (name : string) : t =
  of_defs (List.filter (fun d -> not (String.equal (def_name d) name)) t.defs)

let pp_def ppf = function
  | Global { name; ty; init } ->
      Fmt.pf ppf "@[<2>global %s : %a =@ %a@]" name Typ.pp ty Pretty.pp_value
        init
  | Func { name; ty; body } ->
      Fmt.pf ppf "@[<2>fun %s : %a is@ %a@]" name Typ.pp ty Pretty.pp_expr
        body
  | Page { name; arg_ty; init; render } ->
      Fmt.pf ppf "@[<2>page %s(%a)@ init %a@ render %a@]" name Typ.pp arg_ty
        Pretty.pp_expr init Pretty.pp_expr render

let pp ppf t = Fmt.(list ~sep:(any "@.") pp_def) ppf t.defs
