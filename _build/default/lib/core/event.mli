(** Events [q ::= [exec v] | [push p v] | [pop]] (Fig. 7). *)

type t =
  | Exec of Ast.value  (** a queued handler thunk, [v : () -s-> ()] *)
  | Push of Ident.page * Ast.value
  | Pop

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
