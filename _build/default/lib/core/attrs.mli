(** The attribute environment [Gamma_a] (Sec. 4.3): the types of box
    attributes, consulted by rule T-ATTR (Fig. 10).

    Includes the paper's [ontap : () -s-> ()] and [margin : number]
    plus the attributes its screenshots use: [padding], [width],
    [height], [border], [direction], [align], [background], [color],
    [fontsize], [bold]. *)

val all : (Ident.attr * Typ.t) list
val lookup : Ident.attr -> Typ.t option
val exists : Ident.attr -> bool
val names : Ident.attr list

val handler_ty : Typ.t
(** [() -s-> ()]. *)
