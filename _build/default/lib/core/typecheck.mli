(** The type-and-effect system for expressions (Fig. 10),
    algorithmically: every expression gets its type together with the
    {e least} effect under which it types.  [e] then satisfies the
    declarative judgment [C; Gamma |-mu e : tau] iff its least effect
    is below [mu] and its type is a subtype of [tau] — this gives
    lambdas principal latent effects (T-LAM + T-SUB). *)

type gamma = (Ident.var * Typ.t) list

val empty_gamma : gamma

type answer = { ty : Typ.t; eff : Eff.t }

val infer : Program.t -> gamma -> Ast.expr -> (answer, string) result
(** Type and least effect, or the first error. *)

val infer_value : Program.t -> gamma -> Ast.value -> (answer, string) result

val check :
  Program.t -> gamma -> Eff.t -> Ast.expr -> Typ.t -> (unit, string) result
(** The paper's judgment [C; Gamma |-mu e : tau]. *)

val infer_at :
  Program.t -> gamma -> Eff.t -> Ast.expr -> (Typ.t, string) result
(** Type of [e] under an effect bound. *)

val check_value : Program.t -> Ast.value -> Typ.t -> bool
(** [C; eps |- v : tau] for closed values (effect-irrelevant) — the
    workhorse of Figs. 11 and 12. *)
