(** Effects [mu ::= p | r | s] (Fig. 6) and their order.

    The calculus distinguishes pure code, state code (may write global
    variables and navigate pages) and render code (may build boxes).
    [Pure] sits below both [State] and [Render]; the latter two are
    incomparable — there is deliberately no effect for code that both
    mutates the model and builds the view.  This lattice is what makes
    the paper's model-view separation a type discipline rather than a
    convention. *)

type t = Pure | State | Render

val equal : t -> t -> bool

val sub : t -> t -> bool
(** [sub a b] — effect [a] may be used where [b] is expected (the order
    behind rule T-SUB, Fig. 10). *)

val join : t -> t -> t option
(** Least upper bound; [None] for [State]/[Render], the pair the
    separation forbids. *)

val to_string : t -> string
(** The paper's one-letter names: ["p"], ["s"], ["r"]. *)

val name : t -> string
(** Long names for error messages: ["pure"], ["state"], ["render"]. *)

val pp : Format.formatter -> t -> unit
