(** Types [tau] of the calculus (Fig. 6):

    {v
      tau ::= number | string | (tau_1, ..., tau_n) | tau -mu-> tau
    v}

    plus one documented extension: homogeneous lists [tau list], needed
    because the paper's running example stores a collection of listings
    in a global variable.  Lists of arrow-free element types are
    arrow-free, so they are storable in globals without weakening the
    "no stale code after UPDATE" guarantee (Sec. 4.2). *)

type t =
  | Num
  | Str
  | Tuple of t list
  | Fn of t * Eff.t * t
  | List of t

(** The unit type is the empty tuple [()] (Fig. 6). *)
let unit_ = Tuple []

let handler = Fn (unit_, Eff.State, unit_)

let rec equal a b =
  match (a, b) with
  | Num, Num | Str, Str -> true
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Fn (a1, m1, r1), Fn (a2, m2, r2) ->
      equal a1 a2 && Eff.equal m1 m2 && equal r1 r2
  | List a, List b -> equal a b
  | (Num | Str | Tuple _ | Fn _ | List _), _ -> false

(** Subtyping induced by T-SUB (Fig. 10): a function with latent effect
    [mu1] may be used where latent effect [mu2] is expected whenever
    [mu1 <= mu2].  We close the rule under the usual structural
    variance (contravariant domains, covariant codomains); for the
    paper's programs only the top-level latent effect ever varies. *)
let rec sub a b =
  match (a, b) with
  | Num, Num | Str, Str -> true
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 sub xs ys
  | Fn (a1, m1, r1), Fn (a2, m2, r2) ->
      sub a2 a1 && Eff.sub m1 m2 && sub r1 r2
  | List a, List b -> sub a b
  | (Num | Str | Tuple _ | Fn _ | List _), _ -> false

(** [arrow_free t] — the "[->]-free" side condition of T-C-GLOBAL and
    T-C-PAGE (Fig. 11).  Globals and page arguments must not contain
    function types; this is what guarantees that after an UPDATE
    transition no closure from the old code survives anywhere in the
    system state. *)
let rec arrow_free = function
  | Num | Str -> true
  | Tuple ts -> List.for_all arrow_free ts
  | Fn _ -> false
  | List t -> arrow_free t

let rec pp ppf = function
  | Num -> Fmt.string ppf "number"
  | Str -> Fmt.string ppf "string"
  | Tuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) ts
  | Fn (a, m, r) -> Fmt.pf ppf "%a -%a-> %a" pp_atom a Eff.pp m pp r
  | List t -> Fmt.pf ppf "[%a]" pp t

and pp_atom ppf t =
  match t with Fn _ -> Fmt.pf ppf "(%a)" pp t | _ -> pp ppf t

let to_string t = Fmt.str "%a" pp t

(** Size of the type term; used by the qcheck shrinkers and as a fuel
    measure in random generation. *)
let rec size = function
  | Num | Str -> 1
  | Tuple ts -> 1 + List.fold_left (fun n t -> n + size t) 0 ts
  | Fn (a, _, r) -> 1 + size a + size r
  | List t -> 1 + size t
