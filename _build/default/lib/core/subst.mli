(** Capture-avoiding substitution [e[v/x]] — the engine of rule EP-APP
    (Fig. 8). *)

val subst_expr :
  ?closed_arg:bool -> Ident.var -> Ast.value -> Ast.expr -> Ast.expr
(** [subst_expr x v e] is [e[v/x]].

    [closed_arg] asserts that [v] is closed, making capture impossible
    and letting substitution skip the free-variable scan of [v].  The
    big-step evaluator maintains the invariant that every value it
    produces from a closed program is closed and passes [true]; the
    small-step specification machine does not. *)

val rename_var : Ident.var -> Ident.var -> Ast.expr -> Ast.expr
(** Alpha-renaming of free occurrences (used internally by capture
    avoidance; exposed for the test-suite). *)

val beta :
  ?closed_arg:bool -> Ident.var -> Ast.expr -> Ast.value -> Ast.expr
(** [beta x body v] — the right-hand side of EP-APP:
    [(lambda(x:tau).body) v -> body[v/x]]. *)
