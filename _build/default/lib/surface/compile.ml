(** The compilation pipeline: source text -> tokens -> surface AST ->
    checked info -> core program, with uniform error reporting.

    This is the path the live editor runs continuously as the
    programmer types ("code ... is continuously type-checked, compiled,
    and executed", Sec. 3); its latency is measured by the
    [update_latency] and [typecheck_throughput] benchmarks. *)

type error = { message : string; loc : Loc.t }

let pp_error ppf (e : error) =
  Fmt.pf ppf "%a: %s" Loc.pp e.loc e.message

let error_to_string e = Fmt.str "%a" pp_error e

type compiled = {
  source : string;
  ast : Sast.program;
  info : Check.info;
  core : Live_core.Program.t;
}

let wrap (f : unit -> 'a) : ('a, error) result =
  match f () with
  | v -> Ok v
  | exception Lexer.Error (message, loc) -> Error { message; loc }
  | exception Parser.Error (message, loc) -> Error { message; loc }
  | exception Ity.Error (message, loc) -> Error { message; loc }
  | exception Check.Error (message, loc) -> Error { message; loc }
  | exception Desugar.Error (message, loc) -> Error { message; loc }

(** Parse only. *)
let parse (source : string) : (Sast.program, error) result =
  wrap (fun () -> Parser.parse_program source)

(** Parse and type-check; no lowering. *)
let check (source : string) : (Sast.program * Check.info, error) result =
  wrap (fun () ->
      let ast = Parser.parse_program source in
      let info = Check.check_program ast in
      (ast, info))

(** Full pipeline.  The resulting core program also re-checks under the
    paper's core system (Fig. 10/11) as a translation-validation step;
    a failure there is a compiler bug, reported as such. *)
let compile ?(validate = true) (source : string) : (compiled, error) result =
  match
    wrap (fun () ->
        let ast = Parser.parse_program source in
        let info = Check.check_program ast in
        let core = Desugar.desugar_program ast info in
        (ast, info, core))
  with
  | Error e -> Error e
  | Ok (ast, info, core) ->
      if validate then (
        match Live_core.State_typing.check_code core with
        | Ok () -> Ok { source; ast; info; core }
        | Error m ->
            Error
              {
                message =
                  "internal error: generated core code is ill-typed: " ^ m;
                loc = Loc.dummy;
              })
      else Ok { source; ast; info; core }

(** Compile an AST that was edited programmatically (direct
    manipulation): print it, then compile the printed source, so that
    the result's locations refer to the new source text. *)
let compile_ast (ast : Sast.program) : (compiled, error) result =
  compile (Printer.program_to_string ast)
