(** Hand-written lexer for the surface language.  Comments run from
    [//] to end of line; the paper's [||] string concatenation lexes
    as {!Token.CONCAT}. *)

exception Error of string * Loc.t

type lexed = { tok : Token.t; loc : Loc.t }

val tokenize : string -> lexed list
(** The whole source, ending with an {!Token.EOF} token.
    @raise Error on malformed input, with its location. *)
