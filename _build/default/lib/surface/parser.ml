(** Recursive-descent parser for the surface language.

    Grammar sketch (see README for the full reference):

    {v
      program  := decl*
      decl     := "global" IDENT ":" ty "=" literal
                | "fun" IDENT "(" params ")" [":" ty] block
                | "page" IDENT "(" params ")" "init" block "render" block
      ty       := "number" | "string" | "(" [ty ("," ty)*] ")" | "[" ty "]"
      block    := "{" stmt* "}"
      stmt     := "var" IDENT ":=" expr | IDENT ":=" expr
                | "box" "." IDENT ":=" expr
                | "if" expr block ("else" (block | if-stmt))?
                | "while" expr block
                | "foreach" IDENT "in" expr block
                | "for" IDENT "from" expr "to" expr block
                | "boxed" block | "post" expr | "on" IDENT block
                | "push" IDENT "(" args ")" | "pop"
                | "return" expr | expr
      expr     := or-expr with the usual precedence:
                  or, and, not, comparisons, ++, additive, multiplicative,
                  unary minus, postfix .n, atoms
    v}

    Statement node ids are assigned left-to-right from a counter that
    starts fresh per parse; [boxed] statement ids double as
    {!Live_core.Srcid.t} values. *)

exception Error of string * Loc.t

type st = {
  toks : Lexer.lexed array;
  mutable cur : int;
  mutable next_id : int;
}

let parse_error (st : st) fmt =
  let loc = st.toks.(st.cur).loc in
  Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

let peek (st : st) : Token.t = st.toks.(st.cur).tok
let peek_loc (st : st) : Loc.t = st.toks.(st.cur).loc

let peek2 (st : st) : Token.t =
  if st.cur + 1 < Array.length st.toks then st.toks.(st.cur + 1).tok
  else Token.EOF

let advance (st : st) : Lexer.lexed =
  let l = st.toks.(st.cur) in
  if st.cur + 1 < Array.length st.toks then st.cur <- st.cur + 1;
  l

let expect (st : st) (tok : Token.t) : Loc.t =
  if Token.equal (peek st) tok then (advance st).loc
  else
    parse_error st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek st))

let accept (st : st) (tok : Token.t) : bool =
  if Token.equal (peek st) tok then begin
    ignore (advance st);
    true
  end
  else false

let fresh_id (st : st) : int =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let ident (st : st) : string * Loc.t =
  match peek st with
  | Token.IDENT name ->
      let l = advance st in
      (name, l.loc)
  | t -> parse_error st "expected an identifier, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty (st : st) : Sast.ty =
  match peek st with
  | Token.KW_NUMBER ->
      ignore (advance st);
      Sast.TyNum
  | Token.KW_STRING ->
      ignore (advance st);
      Sast.TyStr
  | Token.LPAREN ->
      ignore (advance st);
      if accept st Token.RPAREN then Sast.TyTuple []
      else begin
        let first = parse_ty st in
        let rec rest acc =
          if accept st Token.COMMA then rest (parse_ty st :: acc)
          else begin
            ignore (expect st Token.RPAREN);
            List.rev acc
          end
        in
        match rest [ first ] with
        | [ single ] -> single (* parenthesised type *)
        | ts -> Sast.TyTuple ts
      end
  | Token.LBRACKET ->
      ignore (advance st);
      let t = parse_ty st in
      ignore (expect st Token.RBRACKET);
      Sast.TyList t
  | t -> parse_error st "expected a type, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk_expr (st : st) desc loc : Sast.expr =
  { Sast.desc; loc; eid = fresh_id st }

let rec parse_expr (st : st) : Sast.expr = parse_or st

and parse_or (st : st) : Sast.expr =
  let lhs = parse_and st in
  if Token.equal (peek st) Token.KW_OR then begin
    ignore (advance st);
    let rhs = parse_or st in
    mk_expr st (Sast.Binop (Sast.Or, lhs, rhs)) (Loc.merge lhs.loc rhs.loc)
  end
  else lhs

and parse_and (st : st) : Sast.expr =
  let lhs = parse_not st in
  if Token.equal (peek st) Token.KW_AND then begin
    ignore (advance st);
    let rhs = parse_and st in
    mk_expr st (Sast.Binop (Sast.And, lhs, rhs)) (Loc.merge lhs.loc rhs.loc)
  end
  else lhs

and parse_not (st : st) : Sast.expr =
  if Token.equal (peek st) Token.KW_NOT then begin
    let loc0 = peek_loc st in
    ignore (advance st);
    let e = parse_not st in
    mk_expr st (Sast.Unop (Sast.Not, e)) (Loc.merge loc0 e.loc)
  end
  else parse_cmp st

and parse_cmp (st : st) : Sast.expr =
  let lhs = parse_concat st in
  let op =
    match peek st with
    | Token.EQEQ -> Some Sast.Eq
    | Token.NEQ -> Some Sast.Ne
    | Token.LT -> Some Sast.Lt
    | Token.LE -> Some Sast.Le
    | Token.GT -> Some Sast.Gt
    | Token.GE -> Some Sast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      ignore (advance st);
      let rhs = parse_concat st in
      mk_expr st (Sast.Binop (op, lhs, rhs)) (Loc.merge lhs.loc rhs.loc)

and parse_concat (st : st) : Sast.expr =
  let lhs = parse_add st in
  if Token.equal (peek st) Token.CONCAT then begin
    ignore (advance st);
    let rhs = parse_concat st in
    mk_expr st (Sast.Binop (Sast.Concat, lhs, rhs)) (Loc.merge lhs.loc rhs.loc)
  end
  else lhs

and parse_add (st : st) : Sast.expr =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
        ignore (advance st);
        let rhs = parse_mul st in
        go (mk_expr st (Sast.Binop (Sast.Add, lhs, rhs)) (Loc.merge lhs.loc rhs.loc))
    | Token.MINUS ->
        ignore (advance st);
        let rhs = parse_mul st in
        go (mk_expr st (Sast.Binop (Sast.Sub, lhs, rhs)) (Loc.merge lhs.loc rhs.loc))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul (st : st) : Sast.expr =
  let rec go lhs =
    match peek st with
    | Token.STAR ->
        ignore (advance st);
        let rhs = parse_unary st in
        go (mk_expr st (Sast.Binop (Sast.Mul, lhs, rhs)) (Loc.merge lhs.loc rhs.loc))
    | Token.SLASH ->
        ignore (advance st);
        let rhs = parse_unary st in
        go (mk_expr st (Sast.Binop (Sast.Div, lhs, rhs)) (Loc.merge lhs.loc rhs.loc))
    | Token.PERCENT ->
        ignore (advance st);
        let rhs = parse_unary st in
        go (mk_expr st (Sast.Binop (Sast.Mod, lhs, rhs)) (Loc.merge lhs.loc rhs.loc))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary (st : st) : Sast.expr =
  if Token.equal (peek st) Token.MINUS then begin
    let loc0 = peek_loc st in
    ignore (advance st);
    let e = parse_unary st in
    mk_expr st (Sast.Unop (Sast.Neg, e)) (Loc.merge loc0 e.loc)
  end
  else parse_postfix st

and parse_postfix (st : st) : Sast.expr =
  let rec go e =
    if Token.equal (peek st) Token.DOT then begin
      match peek2 st with
      | Token.NUMBER f when Float.is_integer f && f >= 1.0 ->
          ignore (advance st);
          let l = advance st in
          go (mk_expr st (Sast.ProjE (e, int_of_float f)) (Loc.merge e.loc l.loc))
      | _ -> parse_error st "expected a tuple index after '.'"
    end
    else e
  in
  go (parse_atom st)

and parse_atom (st : st) : Sast.expr =
  let loc0 = peek_loc st in
  match peek st with
  | Token.NUMBER f ->
      ignore (advance st);
      mk_expr st (Sast.Num f) loc0
  | Token.STRING s ->
      ignore (advance st);
      mk_expr st (Sast.Str s) loc0
  | Token.KW_TRUE ->
      ignore (advance st);
      mk_expr st (Sast.Bool true) loc0
  | Token.KW_FALSE ->
      ignore (advance st);
      mk_expr st (Sast.Bool false) loc0
  | Token.IDENT name ->
      ignore (advance st);
      if Token.equal (peek st) Token.LPAREN then begin
        ignore (advance st);
        let args = parse_args st in
        let loc1 = expect st Token.RPAREN in
        mk_expr st (Sast.Call (name, args)) (Loc.merge loc0 loc1)
      end
      else mk_expr st (Sast.Ref name) loc0
  | Token.LPAREN ->
      ignore (advance st);
      if Token.equal (peek st) Token.RPAREN then begin
        let loc1 = (advance st).loc in
        mk_expr st (Sast.TupleE []) (Loc.merge loc0 loc1)
      end
      else begin
        let first = parse_expr st in
        let rec rest acc =
          if accept st Token.COMMA then rest (parse_expr st :: acc)
          else begin
            let loc1 = expect st Token.RPAREN in
            (List.rev acc, loc1)
          end
        in
        let es, loc1 = rest [ first ] in
        match es with
        | [ single ] -> { single with loc = Loc.merge loc0 loc1 }
        | _ -> mk_expr st (Sast.TupleE es) (Loc.merge loc0 loc1)
      end
  | Token.LBRACKET ->
      ignore (advance st);
      if Token.equal (peek st) Token.RBRACKET then begin
        let loc1 = (advance st).loc in
        mk_expr st (Sast.ListE []) (Loc.merge loc0 loc1)
      end
      else begin
        let first = parse_expr st in
        let rec rest acc =
          if accept st Token.COMMA then rest (parse_expr st :: acc)
          else begin
            let loc1 = expect st Token.RBRACKET in
            (List.rev acc, loc1)
          end
        in
        let es, loc1 = rest [ first ] in
        mk_expr st (Sast.ListE es) (Loc.merge loc0 loc1)
      end
  | t -> parse_error st "expected an expression, found '%s'" (Token.to_string t)

and parse_args (st : st) : Sast.expr list =
  if Token.equal (peek st) Token.RPAREN then []
  else begin
    let first = parse_expr st in
    let rec rest acc =
      if accept st Token.COMMA then rest (parse_expr st :: acc)
      else List.rev acc
    in
    rest [ first ]
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt (st : st) sdesc sloc : Sast.stmt =
  { Sast.sdesc; sloc; sid = fresh_id st }

let rec parse_block (st : st) : Sast.block =
  ignore (expect st Token.LBRACE);
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc
    else if Token.equal (peek st) Token.EOF then
      parse_error st "unterminated block: expected '}'"
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt (st : st) : Sast.stmt =
  let loc0 = peek_loc st in
  match peek st with
  | Token.KW_VAR ->
      ignore (advance st);
      let name, _ = ident st in
      ignore (expect st Token.ASSIGN);
      let e = parse_expr st in
      mk_stmt st (Sast.SVar (name, e)) (Loc.merge loc0 e.loc)
  | Token.KW_BOX when Token.equal (peek2 st) Token.DOT ->
      ignore (advance st);
      ignore (advance st);
      let attr, _ = ident st in
      ignore (expect st Token.ASSIGN);
      let e = parse_expr st in
      mk_stmt st (Sast.SAttr (attr, e)) (Loc.merge loc0 e.loc)
  | Token.KW_IF -> parse_if st
  | Token.KW_WHILE ->
      ignore (advance st);
      let c = parse_expr st in
      let body = parse_block st in
      mk_stmt st (Sast.SWhile (c, body)) loc0
  | Token.KW_FOREACH ->
      ignore (advance st);
      let x, _ = ident st in
      ignore (expect st Token.KW_IN);
      let e = parse_expr st in
      let body = parse_block st in
      mk_stmt st (Sast.SForeach (x, e, body)) loc0
  | Token.KW_FOR ->
      ignore (advance st);
      let x, _ = ident st in
      ignore (expect st Token.KW_FROM);
      let a = parse_expr st in
      ignore (expect st Token.KW_TO);
      let b = parse_expr st in
      let body = parse_block st in
      mk_stmt st (Sast.SFor (x, a, b, body)) loc0
  | Token.KW_BOXED ->
      ignore (advance st);
      let body = parse_block st in
      mk_stmt st (Sast.SBoxed body) loc0
  | Token.KW_POST ->
      ignore (advance st);
      let e = parse_expr st in
      mk_stmt st (Sast.SPost e) (Loc.merge loc0 e.loc)
  | Token.KW_ON ->
      ignore (advance st);
      let ev, _ = ident st in
      let body = parse_block st in
      mk_stmt st (Sast.SOn (ev, body)) loc0
  | Token.KW_PUSH ->
      ignore (advance st);
      let p, _ = ident st in
      ignore (expect st Token.LPAREN);
      let args = parse_args st in
      let loc1 = expect st Token.RPAREN in
      mk_stmt st (Sast.SPush (p, args)) (Loc.merge loc0 loc1)
  | Token.KW_POP ->
      ignore (advance st);
      mk_stmt st Sast.SPop loc0
  | Token.KW_RETURN ->
      ignore (advance st);
      let e = parse_expr st in
      mk_stmt st (Sast.SReturn e) (Loc.merge loc0 e.loc)
  | Token.IDENT _ when Token.equal (peek2 st) Token.ASSIGN ->
      let name, _ = ident st in
      ignore (advance st) (* := *);
      let e = parse_expr st in
      mk_stmt st (Sast.SAssign (name, e)) (Loc.merge loc0 e.loc)
  | _ ->
      let e = parse_expr st in
      mk_stmt st (Sast.SExpr e) e.loc

and parse_if (st : st) : Sast.stmt =
  let loc0 = expect st Token.KW_IF in
  let c = parse_expr st in
  let then_b = parse_block st in
  let else_b =
    if accept st Token.KW_ELSE then
      if Token.equal (peek st) Token.KW_IF then [ parse_if st ]
      else parse_block st
    else []
  in
  mk_stmt st (Sast.SIf (c, then_b, else_b)) loc0

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_params (st : st) : (string * Sast.ty) list =
  ignore (expect st Token.LPAREN);
  if accept st Token.RPAREN then []
  else begin
    let one () =
      let name, _ = ident st in
      ignore (expect st Token.COLON);
      let t = parse_ty st in
      (name, t)
    in
    let first = one () in
    let rec rest acc =
      if accept st Token.COMMA then rest (one () :: acc)
      else begin
        ignore (expect st Token.RPAREN);
        List.rev acc
      end
    in
    rest [ first ]
  end

let parse_decl (st : st) : Sast.decl =
  let loc0 = peek_loc st in
  match peek st with
  | Token.KW_GLOBAL ->
      ignore (advance st);
      let name, _ = ident st in
      ignore (expect st Token.COLON);
      let gty = parse_ty st in
      ignore (expect st Token.EQ);
      let init = parse_expr st in
      Sast.DGlobal { name; gty; init; dloc = Loc.merge loc0 init.loc }
  | Token.KW_FUN ->
      ignore (advance st);
      let name, _ = ident st in
      let params = parse_params st in
      let ret =
        if accept st Token.COLON then Some (parse_ty st) else None
      in
      let body = parse_block st in
      Sast.DFun { name; params; ret; body; dloc = loc0 }
  | Token.KW_PAGE ->
      ignore (advance st);
      let name, _ = ident st in
      let params = parse_params st in
      ignore (expect st Token.KW_INIT);
      let pinit = parse_block st in
      ignore (expect st Token.KW_RENDER);
      let prender = parse_block st in
      Sast.DPage { name; params; pinit; prender; dloc = loc0 }
  | t ->
      parse_error st "expected 'global', 'fun' or 'page', found '%s'"
        (Token.to_string t)

(** Parse a whole program.  Node ids restart from 0 on every parse, so
    re-parsing an unchanged source yields identical ids — the property
    the live environment's box ↔ code mapping relies on across edits. *)
let parse_program (src : string) : Sast.program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0; next_id = 0 } in
  let rec go acc =
    if Token.equal (peek st) Token.EOF then List.rev acc
    else go (parse_decl st :: acc)
  in
  { Sast.decls = go [] }

let parse_expr_string (src : string) : Sast.expr =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0; next_id = 1_000_000 } in
  let e = parse_expr st in
  if not (Token.equal (peek st) Token.EOF) then
    parse_error st "trailing input after expression";
  e
