(** Source locations for the surface language: 1-based line/column
    positions and half-open spans.  Every surface AST node carries a
    span so that type errors point at source and so that the live
    environment can map boxes back to the text of the [boxed] statement
    that created them. *)

type pos = { line : int; col : int; offset : int }

let start_pos = { line = 1; col = 1; offset = 0 }

type t = { start : pos; stop : pos }

let dummy = { start = start_pos; stop = start_pos }

let make start stop = { start; stop }

(** Smallest span covering both arguments. *)
let merge a b =
  let start = if a.start.offset <= b.start.offset then a.start else b.start in
  let stop = if a.stop.offset >= b.stop.offset then a.stop else b.stop in
  { start; stop }

let contains (t : t) ~(offset : int) =
  t.start.offset <= offset && offset < t.stop.offset

let pp ppf (t : t) =
  if t.start.line = t.stop.line then
    Fmt.pf ppf "line %d, characters %d-%d" t.start.line t.start.col t.stop.col
  else
    Fmt.pf ppf "lines %d-%d" t.start.line t.stop.line

let to_string t = Fmt.str "%a" pp t

(** Extract the source text a span covers. *)
let extract (source : string) (t : t) : string =
  let n = String.length source in
  let a = max 0 (min n t.start.offset) in
  let b = max a (min n t.stop.offset) in
  String.sub source a (b - a)
