(** The surface-level builtin function table.

    Each builtin names a core primitive ({!Live_core.Prim}) together
    with a typing schema (instantiated with fresh unification variables
    per call site) and a rule for deriving the primitive's type
    arguments from the call's resolved types.  Keeping the typing and
    the lowering in one table prevents the two from drifting apart. *)

type t = {
  name : string;  (** surface name *)
  prim : string;  (** core primitive *)
  schema : unit -> Ity.t list * Ity.t;
      (** fresh instantiation: parameter types and result type *)
  targs : Live_core.Typ.t list -> Live_core.Typ.t -> Live_core.Typ.t list;
      (** derive the primitive's type arguments from the {e resolved}
          argument types and result type of the call *)
}

let no_targs _ _ = []

(* Type-argument derivations for the polymorphic list primitives. *)
let elem_of = function
  | Live_core.Typ.List t -> t
  | t ->
      invalid_arg
        (Fmt.str "builtin expected a list type, got %a" Live_core.Typ.pp t)

let targ_from_arg0_list args _ret = [ elem_of (List.nth args 0) ]
let targ_from_arg1_list args _ret = [ elem_of (List.nth args 1) ]
let targ_from_ret_list _args ret = [ elem_of ret ]
let targ_from_arg0 args _ret = [ List.nth args 0 ]

let mono params ret () = (params, ret)

let num = Ity.INum
let str = Ity.IStr

let list1 f () =
  let a = Ity.fresh () in
  f a

let all : t list =
  [
    (* ---- arithmetic ---- *)
    { name = "floor"; prim = "floor"; schema = mono [ num ] num; targs = no_targs };
    { name = "ceil"; prim = "ceil"; schema = mono [ num ] num; targs = no_targs };
    { name = "round"; prim = "round"; schema = mono [ num ] num; targs = no_targs };
    { name = "abs"; prim = "abs"; schema = mono [ num ] num; targs = no_targs };
    { name = "sqrt"; prim = "sqrt"; schema = mono [ num ] num; targs = no_targs };
    { name = "exp"; prim = "exp"; schema = mono [ num ] num; targs = no_targs };
    { name = "ln"; prim = "ln"; schema = mono [ num ] num; targs = no_targs };
    { name = "pow"; prim = "pow"; schema = mono [ num; num ] num; targs = no_targs };
    { name = "mod"; prim = "mod"; schema = mono [ num; num ] num; targs = no_targs };
    { name = "min"; prim = "min"; schema = mono [ num; num ] num; targs = no_targs };
    { name = "max"; prim = "max"; schema = mono [ num; num ] num; targs = no_targs };
    { name = "rand"; prim = "rand2"; schema = mono [ num; num ] num; targs = no_targs };
    (* ---- strings ---- *)
    { name = "str"; prim = "str_of"; schema = mono [ num ] str; targs = no_targs };
    { name = "num"; prim = "num_of"; schema = mono [ str ] num; targs = no_targs };
    { name = "count"; prim = "str_len"; schema = mono [ str ] num; targs = no_targs };
    { name = "substring"; prim = "substr"; schema = mono [ str; num; num ] str; targs = no_targs };
    { name = "str_index"; prim = "str_index"; schema = mono [ str; str ] num; targs = no_targs };
    { name = "contains"; prim = "str_contains"; schema = mono [ str; str ] num; targs = no_targs };
    { name = "repeat"; prim = "str_repeat"; schema = mono [ str; num ] str; targs = no_targs };
    { name = "upper"; prim = "to_upper"; schema = mono [ str ] str; targs = no_targs };
    { name = "lower"; prim = "to_lower"; schema = mono [ str ] str; targs = no_targs };
    { name = "trim"; prim = "trim"; schema = mono [ str ] str; targs = no_targs };
    { name = "char_at"; prim = "char_at"; schema = mono [ str; num ] str; targs = no_targs };
    { name = "fixed"; prim = "fmt_fixed"; schema = mono [ num; num ] str; targs = no_targs };
    { name = "pad_left"; prim = "pad_left"; schema = mono [ str; num; str ] str; targs = no_targs };
    { name = "pad_right"; prim = "pad_right"; schema = mono [ str; num; str ] str; targs = no_targs };
    { name = "split"; prim = "split"; schema = mono [ str; str ] (Ity.IList str); targs = no_targs };
    (* ---- lists ---- *)
    { name = "len"; prim = "len";
      schema = list1 (fun a -> ([ Ity.IList a ], num));
      targs = targ_from_arg0_list };
    { name = "is_empty"; prim = "is_empty";
      schema = list1 (fun a -> ([ Ity.IList a ], num));
      targs = targ_from_arg0_list };
    { name = "at"; prim = "nth";
      schema = list1 (fun a -> ([ Ity.IList a; num ], a));
      targs = targ_from_arg0_list };
    { name = "head"; prim = "head";
      schema = list1 (fun a -> ([ Ity.IList a ], a));
      targs = targ_from_arg0_list };
    { name = "tail"; prim = "tail";
      schema = list1 (fun a -> ([ Ity.IList a ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "rev"; prim = "rev";
      schema = list1 (fun a -> ([ Ity.IList a ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "take"; prim = "take";
      schema = list1 (fun a -> ([ Ity.IList a; num ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "drop"; prim = "drop";
      schema = list1 (fun a -> ([ Ity.IList a; num ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "set_at"; prim = "set_nth";
      schema = list1 (fun a -> ([ Ity.IList a; num; a ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "cons"; prim = "cons";
      schema = list1 (fun a -> ([ a; Ity.IList a ], Ity.IList a));
      targs = targ_from_arg1_list };
    { name = "snoc"; prim = "snoc";
      schema = list1 (fun a -> ([ Ity.IList a; a ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "append"; prim = "append";
      schema = list1 (fun a -> ([ Ity.IList a; Ity.IList a ], Ity.IList a));
      targs = targ_from_arg0_list };
    { name = "range"; prim = "range";
      schema = mono [ num; num ] (Ity.IList num);
      targs = no_targs };
    { name = "has"; prim = "list_contains";
      schema = list1 (fun a -> ([ Ity.IList a; a ], num));
      targs = targ_from_arg0_list };
    { name = "find"; prim = "index_of";
      schema = list1 (fun a -> ([ Ity.IList a; a ], num));
      targs = targ_from_arg0_list };
    (* ---- the empty list, when annotation-by-use is inconvenient ---- *)
    { name = "empty"; prim = "nil";
      schema = list1 (fun a -> ([], Ity.IList a));
      targs = targ_from_ret_list };
  ]

let table : (string, t) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace h b.name b) all;
  h

let lookup (name : string) : t option = Hashtbl.find_opt table name
let exists name = Hashtbl.mem table name
let names = List.map (fun b -> b.name) all
