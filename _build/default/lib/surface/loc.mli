(** Source positions (1-based line/column) and half-open spans. *)

type pos = { line : int; col : int; offset : int }

val start_pos : pos

type t = { start : pos; stop : pos }

val dummy : t
val make : pos -> pos -> t

val merge : t -> t -> t
(** Smallest span covering both. *)

val contains : t -> offset:int -> bool

val extract : string -> t -> string
(** The source text a span covers. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
