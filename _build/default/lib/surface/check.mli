(** The surface type-and-effect checker: local type inference
    (unification over the arrow-free types) plus least-effect
    inference for functions via a fixpoint over the call graph.

    Structural rules enforced here, before lowering:
    - init bodies are state code, render bodies are render code,
      handler bodies are state code;
    - handlers may not assign enclosing render-code locals (capture is
      by value);
    - [return] only as the final statement of a function body;
    - global initialisers are literals. *)

exception Error of string * Loc.t

type info = {
  expr_ty : (int, Live_core.Typ.t) Hashtbl.t;
      (** expression node id -> resolved core type *)
  stmt_eff : (int, Live_core.Eff.t) Hashtbl.t;
      (** statement node id -> statement effect *)
  fun_eff : (string, Live_core.Eff.t) Hashtbl.t;
      (** function name -> inferred latent effect *)
}

val check_program : Sast.program -> info
(** @raise Error (or {!Ity.Error}) with a location. *)
