(** The surface type-and-effect checker.

    The surface language keeps the paper's typing discipline (Fig. 10)
    but offers local type inference for [var] bindings and list
    literals (unification on the arrow-free types, {!Ity}).  Effects
    are inferred: every function gets the {e least} latent effect of
    its body, computed by a fixpoint over the call graph (effects form
    a two-level lattice, so the fixpoint converges after at most one
    pass per call-graph edge that raises an effect).

    Output ({!info}) is a side table consumed by {!Desugar}:
    - the resolved core type of every expression node,
    - the effect of every statement (so loop-extraction can annotate
      the generated global functions),
    - the latent effect of every function.

    Checked structural rules beyond typing:
    - [init] bodies must be state code; [render] bodies must be render
      code; [on tapped] handler bodies must be state code (the paper's
      separation, Sec. 3);
    - handlers may not assign local variables captured from the
      enclosing render code — capture is by value (the view is
      stateless; only globals persist, Sec. 5);
    - [return] may only appear as the last statement of a function
      body. *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

module SS = Set.Make (String)
module Eff = Live_core.Eff
module Typ = Live_core.Typ

type info = {
  expr_ty : (int, Typ.t) Hashtbl.t;  (** eid -> resolved core type *)
  stmt_eff : (int, Eff.t) Hashtbl.t;  (** sid -> statement effect *)
  fun_eff : (string, Eff.t) Hashtbl.t;  (** function -> latent effect *)
}

type ctx = {
  globals : (string, Sast.ty) Hashtbl.t;
  funs : (string, (string * Sast.ty) list * Sast.ty option) Hashtbl.t;
  pages : (string, (string * Sast.ty) list) Hashtbl.t;
  fun_eff : (string, Eff.t) Hashtbl.t;
  raw_ty : (int, Ity.t * Loc.t) Hashtbl.t;  (** eid -> inference type *)
  stmt_eff : (int, Eff.t) Hashtbl.t;
  mutable changed : bool;
}

type env = {
  vars : (string * Ity.t) list;  (** innermost first *)
  frozen : SS.t;  (** locals not assignable here (handler capture) *)
}

let lookup_var env x = List.assoc_opt x env.vars

let join loc a b =
  match Eff.join a b with
  | Some e -> e
  | None ->
      error loc
        "this code mixes state and render effects; the model-view \
         separation forbids writing globals and building boxes in the \
         same context"

let joins loc = List.fold_left (join loc) Eff.Pure

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec infer_expr (ctx : ctx) (env : env) (e : Sast.expr) : Ity.t * Eff.t =
  let ty, eff = infer_expr' ctx env e in
  Hashtbl.replace ctx.raw_ty e.eid (ty, e.loc);
  (ty, eff)

and infer_expr' (ctx : ctx) (env : env) (e : Sast.expr) : Ity.t * Eff.t =
  match e.desc with
  | Sast.Num _ -> (Ity.INum, Eff.Pure)
  | Sast.Str _ -> (Ity.IStr, Eff.Pure)
  | Sast.Bool _ -> (Ity.INum, Eff.Pure)
  | Sast.Ref x -> (
      match lookup_var env x with
      | Some ty -> (ty, Eff.Pure)
      | None -> (
          match Hashtbl.find_opt ctx.globals x with
          | Some gty -> (Ity.of_surface gty, Eff.Pure)
          | None -> error e.loc "unknown variable '%s'" x))
  | Sast.TupleE es ->
      let tys, effs = List.split (List.map (infer_expr ctx env) es) in
      (Ity.ITuple tys, joins e.loc effs)
  | Sast.ListE es ->
      let elem = Ity.fresh () in
      let eff =
        joins e.loc
          (List.map
             (fun (el : Sast.expr) ->
               let t, eff = infer_expr ctx env el in
               Ity.unify el.loc t elem;
               eff)
             es)
      in
      (Ity.IList elem, eff)
  | Sast.ProjE (e1, n) -> (
      let t, eff = infer_expr ctx env e1 in
      match Ity.repr t with
      | Ity.ITuple ts ->
          if n >= 1 && n <= List.length ts then (List.nth ts (n - 1), eff)
          else
            error e.loc "projection .%d out of range for %s" n
              (Ity.to_string t)
      | Ity.IVar _ ->
          error e1.loc
            "the tuple type here is not known yet; annotate or reorder \
             so it is known before projecting"
      | _ -> error e1.loc "projection from non-tuple type %s" (Ity.to_string t)
      )
  | Sast.Call (f, args) -> infer_call ctx env e.loc f args
  | Sast.Binop (op, a, b) -> (
      let ta, ea = infer_expr ctx env a in
      let tb, eb = infer_expr ctx env b in
      let eff = join e.loc ea eb in
      match op with
      | Sast.Add | Sast.Sub | Sast.Mul | Sast.Div | Sast.Mod ->
          Ity.unify a.loc ta Ity.INum;
          Ity.unify b.loc tb Ity.INum;
          (Ity.INum, eff)
      | Sast.Concat ->
          Ity.unify a.loc ta Ity.IStr;
          Ity.unify b.loc tb Ity.IStr;
          (Ity.IStr, eff)
      | Sast.And | Sast.Or ->
          Ity.unify a.loc ta Ity.INum;
          Ity.unify b.loc tb Ity.INum;
          (Ity.INum, eff)
      | Sast.Eq | Sast.Ne ->
          Ity.unify e.loc ta tb;
          (Ity.INum, eff)
      | Sast.Lt | Sast.Le | Sast.Gt | Sast.Ge -> (
          Ity.unify e.loc ta tb;
          match Ity.repr ta with
          | Ity.INum | Ity.IStr -> (Ity.INum, eff)
          | Ity.IVar _ ->
              (* default ambiguous orderings to numbers *)
              Ity.unify e.loc ta Ity.INum;
              (Ity.INum, eff)
          | t ->
              error e.loc "ordering is defined on numbers and strings, not %s"
                (Ity.to_string t)))
  | Sast.Unop (op, a) -> (
      let ta, ea = infer_expr ctx env a in
      match op with
      | Sast.Neg | Sast.Not ->
          Ity.unify a.loc ta Ity.INum;
          (Ity.INum, ea))

and infer_call (ctx : ctx) (env : env) (loc : Loc.t) (f : string)
    (args : Sast.expr list) : Ity.t * Eff.t =
  let arg_tys_effs = List.map (infer_expr ctx env) args in
  let arg_effs = List.map snd arg_tys_effs in
  match Hashtbl.find_opt ctx.funs f with
  | Some (params, ret) ->
      if List.length params <> List.length args then
        error loc "function %s expects %d argument(s), got %d" f
          (List.length params) (List.length args);
      List.iter2
        (fun (_, pty) ((aty, _), (arg : Sast.expr)) ->
          Ity.unify arg.loc aty (Ity.of_surface pty))
        params
        (List.combine arg_tys_effs args);
      let latent =
        match Hashtbl.find_opt ctx.fun_eff f with
        | Some e -> e
        | None -> Eff.Pure
      in
      let ret_ty =
        match ret with
        | Some t -> Ity.of_surface t
        | None -> Ity.ITuple []
      in
      (ret_ty, joins loc (latent :: arg_effs))
  | None -> (
      match Builtins.lookup f with
      | None -> error loc "unknown function '%s'" f
      | Some b ->
          let params, ret = b.schema () in
          if List.length params <> List.length args then
            error loc "builtin %s expects %d argument(s), got %d" f
              (List.length params) (List.length args);
          List.iter2
            (fun pty ((aty, _), (arg : Sast.expr)) ->
              Ity.unify arg.loc aty pty)
            params
            (List.combine arg_tys_effs args);
          (ret, joins loc arg_effs))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** [ret]: the function's declared return type when checking a function
    body ([None] elsewhere — return statements are then errors). *)
type bctx = { ret : Ity.t option; in_handler : bool }

let rec infer_block (ctx : ctx) (bctx : bctx) (env : env) (b : Sast.block) :
    Eff.t =
  let _, eff =
    List.fold_left
      (fun (env, eff) stmt ->
        let env', e = infer_stmt ctx bctx env stmt in
        (env', join stmt.Sast.sloc eff e))
      (env, Eff.Pure) b
  in
  eff

and infer_stmt (ctx : ctx) (bctx : bctx) (env : env) (s : Sast.stmt) :
    env * Eff.t =
  let env', eff = infer_stmt' ctx bctx env s in
  Hashtbl.replace ctx.stmt_eff s.sid eff;
  (env', eff)

and infer_stmt' (ctx : ctx) (bctx : bctx) (env : env) (s : Sast.stmt) :
    env * Eff.t =
  match s.sdesc with
  | Sast.SVar (x, e) ->
      if Builtins.exists x then
        error s.sloc "'%s' is a builtin function name" x;
      let ty, eff = infer_expr ctx env e in
      ({ env with vars = (x, ty) :: env.vars }, eff)
  | Sast.SAssign (x, e) -> (
      let ty, eff = infer_expr ctx env e in
      match lookup_var env x with
      | Some declared ->
          if SS.mem x env.frozen then
            error s.sloc
              "cannot assign to '%s' here: it is captured by value from \
               the enclosing render code; use a global variable for \
               state that must outlive the handler" x;
          Ity.unify e.loc ty declared;
          (env, eff)
      | None -> (
          match Hashtbl.find_opt ctx.globals x with
          | Some gty ->
              Ity.unify e.loc ty (Ity.of_surface gty);
              (env, join s.sloc eff Eff.State)
          | None -> error s.sloc "assignment to unknown variable '%s'" x))
  | Sast.SAttr (a, e) -> (
      match Live_core.Attrs.lookup a with
      | None -> error s.sloc "unknown box attribute '%s'" a
      | Some aty -> (
          match aty with
          | Typ.Fn _ ->
              error s.sloc
                "attribute '%s' holds a handler; use 'on tapped { ... }'" a
          | _ ->
              let ty, eff = infer_expr ctx env e in
              Ity.unify e.loc ty (Ity.of_core aty);
              (env, join s.sloc eff Eff.Render)))
  | Sast.SIf (c, b1, b2) ->
      let tc, ec = infer_expr ctx env c in
      Ity.unify c.loc tc Ity.INum;
      let e1 = infer_block ctx bctx env b1 in
      let e2 = infer_block ctx bctx env b2 in
      (env, joins s.sloc [ ec; e1; e2 ])
  | Sast.SWhile (c, body) ->
      let tc, ec = infer_expr ctx env c in
      Ity.unify c.loc tc Ity.INum;
      let eb = infer_block ctx bctx env body in
      (env, join s.sloc ec eb)
  | Sast.SForeach (x, e, body) ->
      let te, ee = infer_expr ctx env e in
      let elem = Ity.fresh () in
      Ity.unify e.loc te (Ity.IList elem);
      let inner = { env with vars = (x, elem) :: env.vars } in
      let eb = infer_block ctx bctx inner body in
      (env, join s.sloc ee eb)
  | Sast.SFor (x, a, b, body) ->
      let ta, ea = infer_expr ctx env a in
      let tb, eb = infer_expr ctx env b in
      Ity.unify a.loc ta Ity.INum;
      Ity.unify b.loc tb Ity.INum;
      let inner = { env with vars = (x, Ity.INum) :: env.vars } in
      let ebody = infer_block ctx bctx inner body in
      (env, joins s.sloc [ ea; eb; ebody ])
  | Sast.SBoxed body ->
      let eb = infer_block ctx bctx env body in
      (env, join s.sloc eb Eff.Render)
  | Sast.SPost e ->
      let _, eff = infer_expr ctx env e in
      (env, join s.sloc eff Eff.Render)
  | Sast.SOn (ev, body) ->
      if not (String.equal ev "tapped") then
        error s.sloc "unknown event '%s' (supported: tapped)" ev;
      if bctx.in_handler then
        error s.sloc "event handlers cannot be nested";
      (* the handler body is state code; freeze enclosing locals *)
      let frozen =
        List.fold_left (fun acc (x, _) -> SS.add x acc) env.frozen env.vars
      in
      let henv = { env with frozen } in
      let heff =
        infer_block ctx { ret = None; in_handler = true } henv body
      in
      if not (Eff.sub heff Eff.State) then
        error s.sloc
          "event handler bodies are state code; they cannot build boxes";
      (env, Eff.Render)
  | Sast.SPush (p, args) -> (
      match Hashtbl.find_opt ctx.pages p with
      | None -> error s.sloc "push of unknown page '%s'" p
      | Some params ->
          if List.length params <> List.length args then
            error s.sloc "page %s expects %d argument(s), got %d" p
              (List.length params) (List.length args);
          let effs =
            List.map2
              (fun (_, pty) (arg : Sast.expr) ->
                let t, eff = infer_expr ctx env arg in
                Ity.unify arg.loc t (Ity.of_surface pty);
                eff)
              params args
          in
          (env, joins s.sloc (Eff.State :: effs)))
  | Sast.SPop -> (env, Eff.State)
  | Sast.SReturn e -> (
      match bctx.ret with
      | None -> error s.sloc "'return' is only allowed in function bodies"
      | Some rty ->
          let t, eff = infer_expr ctx env e in
          Ity.unify e.loc t rty;
          (env, eff))
  | Sast.SExpr e ->
      let _, eff = infer_expr ctx env e in
      (env, eff)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

(** Global initialisers are literals (numbers, strings, booleans,
    negated numbers, tuples/lists of literals) — Fig. 7's
    [global g : tau = v] requires a {e value}. *)
let rec check_literal (e : Sast.expr) : unit =
  match e.desc with
  | Sast.Num _ | Sast.Str _ | Sast.Bool _ -> ()
  | Sast.Unop (Sast.Neg, { desc = Sast.Num _; _ }) -> ()
  | Sast.TupleE es | Sast.ListE es -> List.iter check_literal es
  | _ ->
      error e.loc
        "global initialisers must be literal values; compute initial \
         state in a page's init body instead"

(** Enforce that [return] appears only as the final statement. *)
let check_return_position (body : Sast.block) : unit =
  let rec go_block ~tail_ok (b : Sast.block) =
    List.iteri
      (fun i s ->
        let is_last = i = List.length b - 1 in
        match s.Sast.sdesc with
        | Sast.SReturn _ ->
            if not (tail_ok && is_last) then
              error s.sloc
                "'return' may only appear as the last statement of a \
                 function body"
        | Sast.SIf (_, b1, b2) ->
            go_block ~tail_ok:false b1;
            go_block ~tail_ok:false b2
        | Sast.SWhile (_, b1)
        | Sast.SForeach (_, _, b1)
        | Sast.SFor (_, _, _, b1)
        | Sast.SBoxed b1
        | Sast.SOn (_, b1) ->
            go_block ~tail_ok:false b1
        | _ -> ())
      b
  in
  go_block ~tail_ok:true body

let check_fun (ctx : ctx) name (params : (string * Sast.ty) list)
    (ret : Sast.ty option) (body : Sast.block) (loc : Loc.t) : unit =
  check_return_position body;
  let env =
    {
      vars = List.rev_map (fun (x, t) -> (x, Ity.of_surface t)) params;
      frozen = SS.empty;
    }
  in
  let rty = Ity.of_surface (Option.value ret ~default:(Sast.TyTuple [])) in
  let eff = infer_block ctx { ret = Some rty; in_handler = false } env body in
  (* a non-unit return type requires an actual final return *)
  (match ret with
  | Some t when not (Sast.ty_equal t (Sast.TyTuple [])) -> (
      match List.rev body with
      | { Sast.sdesc = Sast.SReturn _; _ } :: _ -> ()
      | _ ->
          error loc "function %s declares return type %a but has no \
                     final 'return'" name Sast.pp_ty t)
  | _ -> ());
  let prev =
    Option.value (Hashtbl.find_opt ctx.fun_eff name) ~default:Eff.Pure
  in
  if not (Eff.equal prev eff) then begin
    Hashtbl.replace ctx.fun_eff name eff;
    ctx.changed <- true
  end

let check_page (ctx : ctx) (params : (string * Sast.ty) list)
    (pinit : Sast.block) (prender : Sast.block) (dloc : Loc.t) : unit =
  let env =
    {
      vars = List.rev_map (fun (x, t) -> (x, Ity.of_surface t)) params;
      frozen = SS.empty;
    }
  in
  let bctx = { ret = None; in_handler = false } in
  let einit = infer_block ctx bctx env pinit in
  if not (Eff.sub einit Eff.State) then
    error dloc "a page's init body is state code; it cannot build boxes";
  let erender = infer_block ctx bctx env prender in
  if not (Eff.sub erender Eff.Render) then
    error dloc
      "a page's render body cannot write global variables; mutate state \
       in init bodies or event handlers instead";
  ()

let check_global (ctx : ctx) (gty : Sast.ty) (init : Sast.expr) : unit =
  check_literal init;
  let env = { vars = []; frozen = SS.empty } in
  let t, _ = infer_expr ctx env init in
  Ity.unify init.loc t (Ity.of_surface gty)

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let check_program (p : Sast.program) : info =
  let ctx =
    {
      globals = Hashtbl.create 16;
      funs = Hashtbl.create 16;
      pages = Hashtbl.create 16;
      fun_eff = Hashtbl.create 16;
      raw_ty = Hashtbl.create 256;
      stmt_eff = Hashtbl.create 256;
      changed = false;
    }
  in
  (* Pass 1: collect signatures, reject duplicates and reserved names. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let name = Sast.decl_name d in
      let loc = Sast.decl_loc d in
      if Hashtbl.mem seen name then
        error loc "duplicate definition of '%s'" name;
      Hashtbl.add seen name ();
      match d with
      | Sast.DGlobal { name; gty; _ } -> Hashtbl.replace ctx.globals name gty
      | Sast.DFun { name; params; ret; _ } ->
          if Builtins.exists name then
            error loc "'%s' is a builtin function name" name;
          Hashtbl.replace ctx.funs name (params, ret);
          Hashtbl.replace ctx.fun_eff name Eff.Pure
      | Sast.DPage { name; params; _ } -> Hashtbl.replace ctx.pages name params)
    p.decls;
  (match Hashtbl.find_opt ctx.pages "start" with
  | Some [] -> ()
  | Some _ ->
      error Loc.dummy "the 'start' page cannot take parameters"
  | None -> error Loc.dummy "every program needs a parameterless 'start' page");
  (* Pass 2: effect fixpoint over function bodies. *)
  let iterations = ref 0 in
  let rec fix () =
    incr iterations;
    if !iterations > 2 * List.length p.decls + 2 then
      failwith "internal error: effect fixpoint did not converge";
    ctx.changed <- false;
    List.iter
      (fun d ->
        match d with
        | Sast.DFun { name; params; ret; body; dloc } ->
            check_fun ctx name params ret body dloc
        | Sast.DGlobal _ | Sast.DPage _ -> ())
      p.decls;
    if ctx.changed then fix ()
  in
  fix ();
  (* Pass 3: globals and pages under the final effect assumptions. *)
  List.iter
    (fun d ->
      match d with
      | Sast.DGlobal { gty; init; _ } -> check_global ctx gty init
      | Sast.DPage { params; pinit; prender; dloc; _ } ->
          check_page ctx params pinit prender dloc
      | Sast.DFun _ -> ())
    p.decls;
  (* Pass 4: zonk every expression type to a concrete core type. *)
  let expr_ty = Hashtbl.create (Hashtbl.length ctx.raw_ty) in
  Hashtbl.iter
    (fun eid (ity, loc) -> Hashtbl.replace expr_ty eid (Ity.zonk loc ity))
    ctx.raw_ty;
  { expr_ty; stmt_eff = ctx.stmt_eff; fun_eff = ctx.fun_eff }
