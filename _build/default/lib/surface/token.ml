(** Tokens of the surface language. *)

type t =
  | NUMBER of float
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_GLOBAL
  | KW_FUN
  | KW_PAGE
  | KW_INIT
  | KW_RENDER
  | KW_VAR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOREACH
  | KW_FOR
  | KW_IN
  | KW_FROM
  | KW_TO
  | KW_BOXED
  | KW_BOX
  | KW_POST
  | KW_ON
  | KW_PUSH
  | KW_POP
  | KW_RETURN
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | KW_NUMBER  (** the type keyword [number] *)
  | KW_STRING  (** the type keyword [string] *)
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | DOT
  | ASSIGN  (** [:=] *)
  | EQ  (** [=] — only in [global g : t = v] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CONCAT  (** [++] (also written [||] as in the paper) *)
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [
    ("global", KW_GLOBAL); ("fun", KW_FUN); ("page", KW_PAGE);
    ("init", KW_INIT); ("render", KW_RENDER); ("var", KW_VAR);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE);
    ("foreach", KW_FOREACH); ("for", KW_FOR); ("in", KW_IN);
    ("from", KW_FROM); ("to", KW_TO); ("boxed", KW_BOXED); ("box", KW_BOX);
    ("post", KW_POST); ("on", KW_ON); ("push", KW_PUSH); ("pop", KW_POP);
    ("return", KW_RETURN); ("and", KW_AND); ("or", KW_OR); ("not", KW_NOT);
    ("true", KW_TRUE); ("false", KW_FALSE); ("number", KW_NUMBER);
    ("string", KW_STRING);
  ]

let to_string = function
  | NUMBER f -> Live_core.Pretty.string_of_num f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_GLOBAL -> "global"
  | KW_FUN -> "fun"
  | KW_PAGE -> "page"
  | KW_INIT -> "init"
  | KW_RENDER -> "render"
  | KW_VAR -> "var"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOREACH -> "foreach"
  | KW_FOR -> "for"
  | KW_IN -> "in"
  | KW_FROM -> "from"
  | KW_TO -> "to"
  | KW_BOXED -> "boxed"
  | KW_BOX -> "box"
  | KW_POST -> "post"
  | KW_ON -> "on"
  | KW_PUSH -> "push"
  | KW_POP -> "pop"
  | KW_RETURN -> "return"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NUMBER -> "number"
  | KW_STRING -> "string"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | DOT -> "."
  | ASSIGN -> ":="
  | EQ -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CONCAT -> "++"
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
