(** The compilation pipeline: source -> tokens -> AST -> checked info
    -> core program, with uniform located errors.  This is the path
    the live editor runs continuously as the programmer types
    (Sec. 3); its latency is benchmark B2. *)

type error = { message : string; loc : Loc.t }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type compiled = {
  source : string;
  ast : Sast.program;
  info : Check.info;
  core : Live_core.Program.t;
}

val parse : string -> (Sast.program, error) result

val check : string -> (Sast.program * Check.info, error) result

val compile : ?validate:bool -> string -> (compiled, error) result
(** Full pipeline.  With [validate] (default), the generated core
    program is re-checked under Fig. 10/11 as translation validation;
    a failure is reported as an internal error. *)

val compile_ast : Sast.program -> (compiled, error) result
(** Print-then-compile an AST edited programmatically (direct
    manipulation), so locations refer to the new source. *)
