(** Lowering surface programs to the core calculus (Fig. 6).

    Sec. 4.1 of the paper: "Loops are expressible in our calculus via
    recursion through global functions, conditionals via lambda
    abstractions and thunks."  This module is that translation:

    - statement sequences become [let]-chains
      ([let x = e1 in e2] is [(lambda(x:tau).e2) e1]);
    - local-variable {e assignment} becomes shadowing in straight-line
      code, and {e state threading} across block boundaries: a nested
      block that assigns outer locals evaluates to the tuple of their
      final values, which the continuation unpacks;
    - [if] becomes the [cond] primitive applied to two thunks;
    - [while]/[foreach]/[for] each become a fresh {e global} recursive
      function parameterised over every outer local the loop touches,
      returning the tuple of their final values;
    - [on tapped { ... }] becomes [box.ontap := lambda(_:()). body];
      outer locals appearing in the body are captured by value through
      the substitution semantics of EP-APP;
    - [boxed { ... }] becomes the [boxed] core form, stamped with the
      statement's node id as its {!Live_core.Srcid.t}. *)

module Ast = Live_core.Ast
module Typ = Live_core.Typ
module Eff = Live_core.Eff
module Program = Live_core.Program
module Ident = Live_core.Ident
module SS = Set.Make (String)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

type denv = {
  info : Check.info;
  globals : SS.t;
  fun_arity : (string, int) Hashtbl.t;
  page_arity : (string, int) Hashtbl.t;
  vars : (string * Typ.t) list;  (** in-scope locals, innermost first *)
  extra : Program.def list ref;  (** generated loop functions *)
}

let ty_of (env : denv) (e : Sast.expr) : Typ.t =
  match Hashtbl.find_opt env.info.Check.expr_ty e.eid with
  | Some t -> t
  | None -> error e.loc "internal error: expression was not typed"

let eff_of (env : denv) (s : Sast.stmt) : Eff.t =
  match Hashtbl.find_opt env.info.Check.stmt_eff s.sid with
  | Some e -> e
  | None -> Eff.Pure

let var_ty (env : denv) loc x : Typ.t =
  match List.assoc_opt x env.vars with
  | Some t -> t
  | None -> error loc "internal error: unbound local %s" x

(* -- small constructors ------------------------------------------- *)

let let_ (x : string) (ty : Typ.t) (e1 : Ast.expr) (e2 : Ast.expr) : Ast.expr
    =
  Ast.App (Ast.Val (Ast.VLam (x, ty, e2)), e1)

let seq (ty1 : Typ.t) (e1 : Ast.expr) (e2 : Ast.expr) : Ast.expr =
  let_ "_" ty1 e1 e2

let thunk (body : Ast.expr) : Ast.expr =
  Ast.Val (Ast.VLam ("_", Typ.unit_, body))

let cond_ (ty : Typ.t) (c : Ast.expr) (t : Ast.expr) (f : Ast.expr) :
    Ast.expr =
  Ast.Prim ("cond", [ ty ], [ c; thunk t; thunk f ])

let num_e f = Ast.Val (Ast.VNum f)

(* ------------------------------------------------------------------ *)
(* Read/write analysis of blocks against an outer scope                *)
(* ------------------------------------------------------------------ *)

(** [analyze scope block] returns [(reads, writes)]: the outer locals
    (members of [scope]) that the block reads resp. assigns, taking
    shadowing by [var] declarations and loop binders into account. *)
let analyze (scope : SS.t) (block : Sast.block) : SS.t * SS.t =
  let reads = ref SS.empty and writes = ref SS.empty in
  let rec expr (shadow : SS.t) (e : Sast.expr) =
    match e.desc with
    | Sast.Num _ | Sast.Str _ | Sast.Bool _ -> ()
    | Sast.Ref x ->
        if SS.mem x scope && not (SS.mem x shadow) then
          reads := SS.add x !reads
    | Sast.TupleE es | Sast.ListE es | Sast.Call (_, es) ->
        List.iter (expr shadow) es
    | Sast.ProjE (e1, _) | Sast.Unop (_, e1) -> expr shadow e1
    | Sast.Binop (_, a, b) ->
        expr shadow a;
        expr shadow b
  in
  let rec stmts (shadow : SS.t) (b : Sast.block) =
    ignore
      (List.fold_left
         (fun shadow (s : Sast.stmt) ->
           match s.sdesc with
           | Sast.SVar (x, e) ->
               expr shadow e;
               SS.add x shadow
           | Sast.SAssign (x, e) ->
               expr shadow e;
               if SS.mem x scope && not (SS.mem x shadow) then
                 writes := SS.add x !writes;
               shadow
           | Sast.SAttr (_, e) | Sast.SPost e | Sast.SReturn e | Sast.SExpr e
             ->
               expr shadow e;
               shadow
           | Sast.SIf (c, b1, b2) ->
               expr shadow c;
               stmts shadow b1;
               stmts shadow b2;
               shadow
           | Sast.SWhile (c, body) ->
               expr shadow c;
               stmts shadow body;
               shadow
           | Sast.SForeach (x, e, body) ->
               expr shadow e;
               stmts (SS.add x shadow) body;
               shadow
           | Sast.SFor (x, a, b', body) ->
               expr shadow a;
               expr shadow b';
               stmts (SS.add x shadow) body;
               shadow
           | Sast.SBoxed body | Sast.SOn (_, body) ->
               stmts shadow body;
               shadow
           | Sast.SPush (_, args) ->
               List.iter (expr shadow) args;
               shadow
           | Sast.SPop -> shadow)
         shadow b)
  in
  stmts SS.empty block;
  (!reads, !writes)

(** Order a set of locals by scope position, outermost first, paired
    with their types — the canonical order of threading tuples. *)
let ordered (env : denv) (names : SS.t) : (string * Typ.t) list =
  List.rev
    (List.filter (fun (x, _) -> SS.mem x names) env.vars)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec dexpr (env : denv) (e : Sast.expr) : Ast.expr =
  match e.desc with
  | Sast.Num f -> num_e f
  | Sast.Str s -> Ast.Val (Ast.VStr s)
  | Sast.Bool b -> Ast.Val (Ast.vbool b)
  | Sast.Ref x ->
      if List.mem_assoc x env.vars then Ast.Var x
      else if SS.mem x env.globals then Ast.Get x
      else error e.loc "internal error: unresolved name %s" x
  | Sast.TupleE es -> Ast.Tuple (List.map (dexpr env) es)
  | Sast.ListE es -> (
      match ty_of env e with
      | Typ.List elem ->
          List.fold_right
            (fun el acc -> Ast.Prim ("cons", [ elem ], [ dexpr env el; acc ]))
            es
            (Ast.Prim ("nil", [ elem ], []))
      | t ->
          error e.loc "internal error: list literal with type %a" Typ.pp t)
  | Sast.ProjE (e1, n) -> Ast.Proj (dexpr env e1, n)
  | Sast.Call (f, args) ->
      if Hashtbl.mem env.fun_arity f then
        Ast.App (Ast.Fn f, pack_args env args)
      else (
        match Builtins.lookup f with
        | None -> error e.loc "internal error: unknown function %s" f
        | Some b ->
            let arg_tys = List.map (ty_of env) args in
            let ret_ty = ty_of env e in
            let targs = b.Builtins.targs arg_tys ret_ty in
            Ast.Prim (b.Builtins.prim, targs, List.map (dexpr env) args))
  | Sast.Binop (op, a, b) -> dbinop env op a b
  | Sast.Unop (Sast.Neg, a) -> Ast.Prim ("neg", [], [ dexpr env a ])
  | Sast.Unop (Sast.Not, a) -> Ast.Prim ("not", [], [ dexpr env a ])

and pack_args (env : denv) (args : Sast.expr list) : Ast.expr =
  match args with
  | [] -> Ast.eunit
  | [ a ] -> dexpr env a
  | args -> Ast.Tuple (List.map (dexpr env) args)

and dbinop (env : denv) (op : Sast.binop) (a : Sast.expr) (b : Sast.expr) :
    Ast.expr =
  let da () = dexpr env a and db () = dexpr env b in
  let arith name = Ast.Prim (name, [], [ da (); db () ]) in
  let compare name = Ast.Prim (name, [ ty_of env a ], [ da (); db () ]) in
  match op with
  | Sast.Add -> arith "add"
  | Sast.Sub -> arith "sub"
  | Sast.Mul -> arith "mul"
  | Sast.Div -> arith "div"
  | Sast.Mod -> arith "mod"
  | Sast.Concat -> arith "concat"
  | Sast.Eq -> compare "eq"
  | Sast.Ne -> compare "ne"
  | Sast.Lt -> compare "lt"
  | Sast.Le -> compare "le"
  | Sast.Gt -> compare "gt"
  | Sast.Ge -> compare "ge"
  (* short-circuit logic via the thunked conditional *)
  | Sast.And -> cond_ Typ.Num (da ()) (db ()) (num_e 0.0)
  | Sast.Or -> cond_ Typ.Num (da ()) (num_e 1.0) (db ())

(* ------------------------------------------------------------------ *)
(* Blocks and statements                                               *)
(* ------------------------------------------------------------------ *)

let scope_set (env : denv) : SS.t =
  List.fold_left (fun acc (x, _) -> SS.add x acc) SS.empty env.vars

(** Tuple of the current values of the given locals. *)
let pack_locals (locals : (string * Typ.t) list) : Ast.expr =
  Ast.Tuple (List.map (fun (x, _) -> Ast.Var x) locals)

let tuple_ty (locals : (string * Typ.t) list) : Typ.t =
  Typ.Tuple (List.map snd locals)

(** Unpack a tuple of locals around a continuation:
    [let packed = e in let x1 = packed.1 in ... k]. *)
let unpack_locals (locals : (string * Typ.t) list) (e : Ast.expr)
    (k : Ast.expr) : Ast.expr =
  match locals with
  | [] -> seq (tuple_ty locals) e k
  | _ ->
      let packed = "$packed" in
      let body =
        List.fold_right
          (fun (i, (x, ty)) acc ->
            let_ x ty (Ast.Proj (Ast.Var packed, i)) acc)
          (List.mapi (fun i l -> (i + 1, l)) locals)
          k
      in
      let_ packed (tuple_ty locals) e body

let rec dblock (env : denv) (b : Sast.block) (yield : denv -> Ast.expr) :
    Ast.expr =
  match b with
  | [] -> yield env
  | s :: rest -> dstmt env s rest yield

and dstmt (env : denv) (s : Sast.stmt) (rest : Sast.block)
    (yield : denv -> Ast.expr) : Ast.expr =
  let continue_ env = dblock env rest yield in
  match s.sdesc with
  | Sast.SVar (x, e) ->
      let ty = ty_of env e in
      let_ x ty (dexpr env e)
        (continue_ { env with vars = (x, ty) :: env.vars })
  | Sast.SAssign (x, e) ->
      if List.mem_assoc x env.vars then
        (* local: shadowing rebind *)
        let_ x (var_ty env s.sloc x) (dexpr env e) (continue_ env)
      else
        (* global: ES-ASSIGN *)
        seq Typ.unit_ (Ast.Set (x, dexpr env e)) (continue_ env)
  | Sast.SAttr (a, e) ->
      seq Typ.unit_ (Ast.SetAttr (a, dexpr env e)) (continue_ env)
  | Sast.SPost e -> seq Typ.unit_ (Ast.Post (dexpr env e)) (continue_ env)
  | Sast.SExpr e -> seq (ty_of env e) (dexpr env e) (continue_ env)
  | Sast.SPush (p, args) ->
      let arity =
        match Hashtbl.find_opt env.page_arity p with
        | Some n -> n
        | None -> error s.sloc "internal error: unknown page %s" p
      in
      ignore arity;
      seq Typ.unit_ (Ast.Push (p, pack_args env args)) (continue_ env)
  | Sast.SPop -> seq Typ.unit_ Ast.Pop (continue_ env)
  | Sast.SReturn e ->
      (* checked to be in final position: the block's value *)
      dexpr env e
  | Sast.SOn (_, body) ->
      let handler_body = dblock env body (fun _ -> Ast.eunit) in
      let handler = Ast.Val (Ast.VLam ("_", Typ.unit_, handler_body)) in
      seq Typ.unit_ (Ast.SetAttr ("ontap", handler)) (continue_ env)
  | Sast.SBoxed body ->
      let scope = scope_set env in
      let _, writes = analyze scope body in
      let assigned = ordered env writes in
      let inner =
        Ast.Boxed
          ( Some (Live_core.Srcid.of_int s.sid),
            dblock env body (fun _ -> pack_locals assigned) )
      in
      unpack_locals assigned inner (continue_ env)
  | Sast.SIf (c, b1, b2) ->
      let scope = scope_set env in
      let _, w1 = analyze scope b1 in
      let _, w2 = analyze scope b2 in
      let assigned = ordered env (SS.union w1 w2) in
      let ty = tuple_ty assigned in
      let branch b = dblock env b (fun _ -> pack_locals assigned) in
      let e = cond_ ty (dexpr env c) (branch b1) (branch b2) in
      unpack_locals assigned e (continue_ env)
  | Sast.SWhile (c, body) -> dwhile env s c body continue_
  | Sast.SForeach (x, e, body) -> dforeach env s x e body continue_
  | Sast.SFor (x, a, b, body) -> dfor env s x a b body continue_

(* [while c { body }]:

     fun $while_n : (TP) -mu-> (TP) is
       \(ps : TP).
         let p1 = ps.1 ... pk = ps.k in
         cond<TP>(c, \().$while_n(<body yielding (p...)>), \().(p...))
     ...
     let packed = $while_n((p...)) in unpack P in rest

   where P is every in-scope local the loop reads or writes. *)
and dwhile (env : denv) (s : Sast.stmt) (c : Sast.expr) (body : Sast.block)
    (continue_ : denv -> Ast.expr) : Ast.expr =
  let scope = scope_set env in
  let rc, wc = analyze scope [ { s with sdesc = Sast.SExpr c } ] in
  let rb, wb = analyze scope body in
  let p = ordered env (List.fold_left SS.union rc [ wc; rb; wb ]) in
  let tp = tuple_ty p in
  let eff = eff_of env s in
  let fname = Ident.fresh "while" in
  let fenv = { env with vars = List.rev p } in
  let loop_body =
    let recurse =
      dblock fenv body (fun env' ->
          ignore env';
          Ast.App (Ast.Fn fname, pack_locals p))
    in
    cond_ tp (dexpr fenv c) recurse (pack_locals p)
  in
  let lam = make_param_lambda p loop_body in
  env.extra :=
    Program.Func { name = fname; ty = Typ.Fn (tp, eff, tp); body = lam }
    :: !(env.extra);
  unpack_locals p (Ast.App (Ast.Fn fname, pack_locals p)) (continue_ env)

(* Build [\(ps : TP). let p1 = ps.1 in ... body]. *)
and make_param_lambda (p : (string * Typ.t) list) (body : Ast.expr) :
    Ast.expr =
  let ps = "$ps" in
  let unpacked =
    List.fold_right
      (fun (i, (x, ty)) acc -> let_ x ty (Ast.Proj (Ast.Var ps, i)) acc)
      (List.mapi (fun i l -> (i + 1, l)) p)
      body
  in
  Ast.Val (Ast.VLam (ps, tuple_ty p, unpacked))

(* [foreach x in e { body }]:

     fun $foreach_n : (([TE], TP)) -mu-> (TP) is
       \(args). let lst = args.1, p... = args.2.. in
         cond<TP>(len(lst) > 0,
           \(). let x = head(lst) in
                let packed = <body yielding (p...)> in
                $foreach_n((tail(lst), packed.1, ..., packed.k)),
           \(). (p...)) *)
and dforeach (env : denv) (s : Sast.stmt) (x : string) (e : Sast.expr)
    (body : Sast.block) (continue_ : denv -> Ast.expr) : Ast.expr =
  let elem_ty =
    match ty_of env e with
    | Typ.List t -> t
    | t -> error e.loc "internal error: foreach over %a" Typ.pp t
  in
  (* [x] shadows any outer local of the same name inside the body, so
     it must not become a loop parameter *)
  let scope = SS.remove x (scope_set env) in
  let rb, wb = analyze scope body in
  let p = ordered env (SS.union rb wb) in
  let tp = tuple_ty p in
  let eff = eff_of env s in
  let fname = Ident.fresh "foreach" in
  let args_locals = ("$lst", Typ.List elem_ty) :: p in
  let benv = { env with vars = (x, elem_ty) :: List.rev p } in
  let loop_body =
    let recurse =
      let_ x elem_ty
        (Ast.Prim ("head", [ elem_ty ], [ Ast.Var "$lst" ]))
        (unpack_locals p
           (dblock benv body (fun _ -> pack_locals p))
           (Ast.App
              ( Ast.Fn fname,
                Ast.Tuple
                  (Ast.Prim ("tail", [ elem_ty ], [ Ast.Var "$lst" ])
                  :: List.map (fun (y, _) -> Ast.Var y) p) )))
    in
    cond_ tp
      (Ast.Prim
         ("not", [], [ Ast.Prim ("is_empty", [ elem_ty ], [ Ast.Var "$lst" ]) ]))
      recurse (pack_locals p)
  in
  let lam = make_param_lambda args_locals loop_body in
  env.extra :=
    Program.Func
      {
        name = fname;
        ty = Typ.Fn (tuple_ty args_locals, eff, tp);
        body = lam;
      }
    :: !(env.extra);
  unpack_locals p
    (Ast.App
       ( Ast.Fn fname,
         Ast.Tuple (dexpr env e :: List.map (fun (y, _) -> Ast.Var y) p) ))
    (continue_ env)

(* [for i from a to b { body }] iterates a <= i < b:

     fun $for_n : ((number, number, TP)) -mu-> (TP) is
       \(args). let i = args.1, stop = args.2, p... in
         cond<TP>(i < stop,
           \(). let packed = <body yielding (p...)> in
                $for_n((i+1, stop, packed...)),
           \(). (p...)) *)
and dfor (env : denv) (s : Sast.stmt) (x : string) (a : Sast.expr)
    (b : Sast.expr) (body : Sast.block) (continue_ : denv -> Ast.expr) :
    Ast.expr =
  (* the index [x] shadows any same-named outer local (see dforeach) *)
  let scope = SS.remove x (scope_set env) in
  let rb, wb = analyze scope body in
  let p = ordered env (SS.union rb wb) in
  let tp = tuple_ty p in
  let eff = eff_of env s in
  let fname = Ident.fresh "for" in
  let stop = "$stop" in
  let args_locals = (x, Typ.Num) :: (stop, Typ.Num) :: p in
  let benv = { env with vars = (x, Typ.Num) :: List.rev p } in
  let loop_body =
    let recurse =
      unpack_locals p
        (dblock benv body (fun _ -> pack_locals p))
        (Ast.App
           ( Ast.Fn fname,
             Ast.Tuple
               (Ast.Prim ("add", [], [ Ast.Var x; num_e 1.0 ])
               :: Ast.Var stop
               :: List.map (fun (y, _) -> Ast.Var y) p) ))
    in
    cond_ tp
      (Ast.Prim ("lt", [ Typ.Num ], [ Ast.Var x; Ast.Var stop ]))
      recurse (pack_locals p)
  in
  let lam = make_param_lambda args_locals loop_body in
  env.extra :=
    Program.Func
      {
        name = fname;
        ty = Typ.Fn (tuple_ty args_locals, eff, tp);
        body = lam;
      }
    :: !(env.extra);
  unpack_locals p
    (Ast.App
       ( Ast.Fn fname,
         Ast.Tuple
           (dexpr env a :: dexpr env b
           :: List.map (fun (y, _) -> Ast.Var y) p) ))
    (continue_ env)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let rec const_value (env : denv) (e : Sast.expr) : Ast.value =
  match e.desc with
  | Sast.Num f -> Ast.VNum f
  | Sast.Str s -> Ast.VStr s
  | Sast.Bool b -> Ast.vbool b
  | Sast.Unop (Sast.Neg, { desc = Sast.Num f; _ }) -> Ast.VNum (-.f)
  | Sast.TupleE es -> Ast.VTuple (List.map (const_value env) es)
  | Sast.ListE es -> (
      match ty_of env e with
      | Typ.List elem -> Ast.VList (elem, List.map (const_value env) es)
      | t -> error e.loc "internal error: list literal typed %a" Typ.pp t)
  | _ -> error e.loc "global initialisers must be literal values"

(** Build the lambda for a function/page body from its parameter list:
    zero params bind unit, one binds directly, several bind a tuple
    that the prologue unpacks. *)
let param_lambda (env : denv) (params : (string * Typ.t) list)
    (mk_body : denv -> Ast.expr) : Typ.t * Ast.expr =
  match params with
  | [] ->
      let body = mk_body env in
      (Typ.unit_, Ast.Val (Ast.VLam ("_", Typ.unit_, body)))
  | [ (x, ty) ] ->
      let body = mk_body { env with vars = (x, ty) :: env.vars } in
      (ty, Ast.Val (Ast.VLam (x, ty, body)))
  | _ ->
      let dom = Typ.Tuple (List.map snd params) in
      let inner_env =
        { env with vars = List.rev params @ env.vars }
      in
      let body = mk_body inner_env in
      let args = "$args" in
      let unpacked =
        List.fold_right
          (fun (i, (x, ty)) acc ->
            let_ x ty (Ast.Proj (Ast.Var args, i)) acc)
          (List.mapi (fun i p -> (i + 1, p)) params)
          body
      in
      (dom, Ast.Val (Ast.VLam (args, dom, unpacked)))

(** Compile a checked program to core code. *)
let desugar_program (p : Sast.program) (info : Check.info) : Program.t =
  Ident.reset_fresh ();
  let globals = ref SS.empty in
  let fun_arity = Hashtbl.create 16 in
  let page_arity = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match d with
      | Sast.DGlobal { name; _ } -> globals := SS.add name !globals
      | Sast.DFun { name; params; _ } ->
          Hashtbl.replace fun_arity name (List.length params)
      | Sast.DPage { name; params; _ } ->
          Hashtbl.replace page_arity name (List.length params))
    p.decls;
  let extra = ref [] in
  let base_env =
    { info; globals = !globals; fun_arity; page_arity; vars = []; extra }
  in
  let core_params params =
    List.map (fun (x, t) -> (x, Sast.ty_to_core t)) params
  in
  let defs =
    List.map
      (fun d ->
        match d with
        | Sast.DGlobal { name; gty; init; _ } ->
            Program.Global
              {
                name;
                ty = Sast.ty_to_core gty;
                init = const_value base_env init;
              }
        | Sast.DFun { name; params; ret; body; _ } ->
            let params = core_params params in
            let ret_ty =
              Sast.ty_to_core (Option.value ret ~default:(Sast.TyTuple []))
            in
            let eff =
              Option.value
                (Hashtbl.find_opt info.Check.fun_eff name)
                ~default:Eff.Pure
            in
            let dom, lam =
              param_lambda base_env params (fun env ->
                  dblock env body (fun _ -> Ast.eunit))
            in
            (* a function whose last statement is [return e] yields e;
               dblock handles that because SReturn ignores the yield *)
            Program.Func { name; ty = Typ.Fn (dom, eff, ret_ty); body = lam }
        | Sast.DPage { name; params; pinit; prender; _ } ->
            let params = core_params params in
            let _, init_lam =
              param_lambda base_env params (fun env ->
                  dblock env pinit (fun _ -> Ast.eunit))
            in
            let dom, render_lam =
              param_lambda base_env params (fun env ->
                  dblock env prender (fun _ -> Ast.eunit))
            in
            Program.Page
              { name; arg_ty = dom; init = init_lam; render = render_lam })
      p.decls
  in
  Program.of_defs (defs @ List.rev !extra)
