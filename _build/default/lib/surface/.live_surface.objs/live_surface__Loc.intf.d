lib/surface/loc.mli: Format
