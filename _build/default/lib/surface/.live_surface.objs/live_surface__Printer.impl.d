lib/surface/printer.ml: Buffer List Live_core Sast String
