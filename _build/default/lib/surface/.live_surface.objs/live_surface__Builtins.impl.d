lib/surface/builtins.ml: Fmt Hashtbl Ity List Live_core
