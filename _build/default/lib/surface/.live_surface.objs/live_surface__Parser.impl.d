lib/surface/parser.ml: Array Float Fmt Lexer List Loc Sast Token
