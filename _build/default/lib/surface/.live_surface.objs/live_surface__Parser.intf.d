lib/surface/parser.mli: Loc Sast
