lib/surface/lexer.ml: Buffer Fmt List Loc Option String Token
