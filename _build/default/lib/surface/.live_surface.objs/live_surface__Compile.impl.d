lib/surface/compile.ml: Check Desugar Fmt Ity Lexer Live_core Loc Parser Printer Sast
