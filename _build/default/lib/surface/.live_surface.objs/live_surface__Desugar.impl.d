lib/surface/desugar.ml: Builtins Check Fmt Hashtbl List Live_core Loc Option Sast Set String
