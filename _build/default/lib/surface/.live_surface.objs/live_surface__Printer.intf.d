lib/surface/printer.mli: Sast
