lib/surface/sast.ml: Fmt List Live_core Loc String
