lib/surface/check.mli: Hashtbl Live_core Loc Sast
