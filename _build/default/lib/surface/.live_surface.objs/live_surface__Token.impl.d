lib/surface/token.ml: Live_core Printf
