lib/surface/check.ml: Builtins Fmt Hashtbl Ity List Live_core Loc Option Sast Set String
