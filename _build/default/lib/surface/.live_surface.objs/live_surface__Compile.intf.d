lib/surface/compile.mli: Check Format Live_core Loc Sast
