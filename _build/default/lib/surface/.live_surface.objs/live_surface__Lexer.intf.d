lib/surface/lexer.mli: Loc Token
