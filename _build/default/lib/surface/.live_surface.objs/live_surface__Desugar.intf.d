lib/surface/desugar.mli: Check Live_core Loc Sast
