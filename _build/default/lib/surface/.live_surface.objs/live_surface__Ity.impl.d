lib/surface/ity.ml: Fmt List Live_core Loc Sast
