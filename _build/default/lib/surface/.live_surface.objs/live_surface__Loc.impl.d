lib/surface/loc.ml: Fmt String
