(** Lowering surface programs to the Fig. 6 calculus, per Sec. 4.1:
    statement sequences become let-chains, local mutation becomes
    shadowing plus tuple-threading across block boundaries, [if]
    becomes the thunked [cond] primitive, loops become fresh global
    recursive functions parameterised over the locals they touch, and
    [on tapped] becomes an [ontap]-attribute lambda capturing by
    value.

    The output is validated against the core system ([C |- C]) by
    {!Compile.compile}; a failure there is a compiler bug. *)

exception Error of string * Loc.t

val desugar_program : Sast.program -> Check.info -> Live_core.Program.t
(** Requires the program to have passed {!Check.check_program} (the
    [info] argument is its output).  Deterministic: identical input
    yields an identical program, including generated function names. *)
