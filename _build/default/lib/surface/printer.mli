(** Source formatter.  [parse (program_to_string p)] equals [p] up to
    locations and node ids, and printing is canonical
    ([print ∘ parse ∘ print = print]) — the properties direct
    manipulation relies on to write code back without corrupting the
    program (tested in [test/test_printer.ml]). *)

val program_to_string : Sast.program -> string
val stmt_to_string : Sast.stmt -> string

val expr_str : ?prec:int -> Sast.expr -> string
(** Render an expression, parenthesising minimally against the context
    precedence. *)

val ty_str : Sast.ty -> string
val binop_str : Sast.binop -> string
