(** Source formatter: prints a surface AST back to concrete syntax.

    The live environment's direct-manipulation feature (Sec. 3) edits
    the AST (e.g. inserting [box.margin := 12] into a boxed statement)
    and re-prints the program, so the printer must produce text that
    re-parses to an equivalent AST ([parse (print p)] equals [p] up to
    locations and node ids — tested by a round-trip property). *)

let binop_str : Sast.binop -> string = function
  | Sast.Add -> "+"
  | Sast.Sub -> "-"
  | Sast.Mul -> "*"
  | Sast.Div -> "/"
  | Sast.Mod -> "%"
  | Sast.Concat -> "++"
  | Sast.Eq -> "=="
  | Sast.Ne -> "!="
  | Sast.Lt -> "<"
  | Sast.Le -> "<="
  | Sast.Gt -> ">"
  | Sast.Ge -> ">="
  | Sast.And -> "and"
  | Sast.Or -> "or"

(* Precedence levels, looser to tighter; used to parenthesise minimally. *)
let binop_prec : Sast.binop -> int = function
  | Sast.Or -> 1
  | Sast.And -> 2
  | Sast.Eq | Sast.Ne | Sast.Lt | Sast.Le | Sast.Gt | Sast.Ge -> 4
  | Sast.Concat -> 5
  | Sast.Add | Sast.Sub -> 6
  | Sast.Mul | Sast.Div | Sast.Mod -> 7

let rec ty_str : Sast.ty -> string = function
  | Sast.TyNum -> "number"
  | Sast.TyStr -> "string"
  | Sast.TyTuple ts ->
      "(" ^ String.concat ", " (List.map ty_str ts) ^ ")"
  | Sast.TyList t -> "[" ^ ty_str t ^ "]"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** [expr_str ~prec e]: render [e], parenthesising if its top operator
    binds looser than the context precedence. *)
let rec expr_str ?(prec = 0) (e : Sast.expr) : string =
  match e.desc with
  | Sast.Num f ->
      let s = Live_core.Pretty.string_of_num f in
      if f < 0.0 && prec > 0 then "(" ^ s ^ ")" else s
  | Sast.Str s -> "\"" ^ escape s ^ "\""
  | Sast.Bool true -> "true"
  | Sast.Bool false -> "false"
  | Sast.Ref x -> x
  | Sast.TupleE es ->
      "(" ^ String.concat ", " (List.map (expr_str ~prec:0) es) ^ ")"
  | Sast.ListE es ->
      "[" ^ String.concat ", " (List.map (expr_str ~prec:0) es) ^ "]"
  | Sast.ProjE (e1, n) -> expr_str ~prec:10 e1 ^ "." ^ string_of_int n
  | Sast.Call (f, args) ->
      f ^ "(" ^ String.concat ", " (List.map (expr_str ~prec:0) args) ^ ")"
  | Sast.Binop (op, a, b) ->
      let p = binop_prec op in
      (* associativity must match the parser: additive and
         multiplicative chains parse left-associative, concatenation
         and the logical operators right-associative, comparisons do
         not chain *)
      let lp, rp =
        match op with
        | Sast.Add | Sast.Sub | Sast.Mul | Sast.Div | Sast.Mod -> (p, p + 1)
        | Sast.Concat | Sast.And | Sast.Or -> (p + 1, p)
        | Sast.Eq | Sast.Ne | Sast.Lt | Sast.Le | Sast.Gt | Sast.Ge ->
            (p + 1, p + 1)
      in
      let s =
        expr_str ~prec:lp a ^ " " ^ binop_str op ^ " " ^ expr_str ~prec:rp b
      in
      if p < prec then "(" ^ s ^ ")" else s
  | Sast.Unop (Sast.Neg, a) ->
      let s = "-" ^ expr_str ~prec:9 a in
      if prec > 8 then "(" ^ s ^ ")" else s
  | Sast.Unop (Sast.Not, a) ->
      let s = "not " ^ expr_str ~prec:3 a in
      if prec > 3 then "(" ^ s ^ ")" else s

let indent buf n = Buffer.add_string buf (String.make (2 * n) ' ')

let rec print_block (buf : Buffer.t) (lvl : int) (b : Sast.block) : unit =
  Buffer.add_string buf "{\n";
  List.iter (print_stmt buf (lvl + 1)) b;
  indent buf lvl;
  Buffer.add_string buf "}"

and print_stmt (buf : Buffer.t) (lvl : int) (s : Sast.stmt) : unit =
  indent buf lvl;
  (match s.sdesc with
  | Sast.SVar (x, e) ->
      Buffer.add_string buf ("var " ^ x ^ " := " ^ expr_str e)
  | Sast.SAssign (x, e) -> Buffer.add_string buf (x ^ " := " ^ expr_str e)
  | Sast.SAttr (a, e) ->
      Buffer.add_string buf ("box." ^ a ^ " := " ^ expr_str e)
  | Sast.SIf (c, b1, b2) ->
      Buffer.add_string buf ("if " ^ expr_str c ^ " ");
      print_block buf lvl b1;
      if b2 <> [] then begin
        Buffer.add_string buf " else ";
        match b2 with
        | [ ({ sdesc = Sast.SIf _; _ } as nested) ] ->
            (* else-if chain: print inline, reusing the same line *)
            let sub = Buffer.create 64 in
            print_stmt sub lvl nested;
            (* drop the indentation the nested statement printed *)
            let text = Buffer.contents sub in
            let text = String.trim text in
            let text =
              if String.length text > 0 && text.[String.length text - 1] = '\n'
              then String.sub text 0 (String.length text - 1)
              else text
            in
            Buffer.add_string buf text
        | _ -> print_block buf lvl b2
      end
  | Sast.SWhile (c, b) ->
      Buffer.add_string buf ("while " ^ expr_str c ^ " ");
      print_block buf lvl b
  | Sast.SForeach (x, e, b) ->
      Buffer.add_string buf ("foreach " ^ x ^ " in " ^ expr_str e ^ " ");
      print_block buf lvl b
  | Sast.SFor (x, a, b', body) ->
      Buffer.add_string buf
        ("for " ^ x ^ " from " ^ expr_str a ^ " to " ^ expr_str b' ^ " ");
      print_block buf lvl body
  | Sast.SBoxed b ->
      Buffer.add_string buf "boxed ";
      print_block buf lvl b
  | Sast.SPost e -> Buffer.add_string buf ("post " ^ expr_str e)
  | Sast.SOn (ev, b) ->
      Buffer.add_string buf ("on " ^ ev ^ " ");
      print_block buf lvl b
  | Sast.SPush (p, args) ->
      Buffer.add_string buf
        ("push " ^ p ^ "("
        ^ String.concat ", " (List.map expr_str args)
        ^ ")")
  | Sast.SPop -> Buffer.add_string buf "pop"
  | Sast.SReturn e -> Buffer.add_string buf ("return " ^ expr_str e)
  | Sast.SExpr e -> Buffer.add_string buf (expr_str e));
  Buffer.add_char buf '\n'

let print_params (params : (string * Sast.ty) list) : string =
  "("
  ^ String.concat ", " (List.map (fun (x, t) -> x ^ " : " ^ ty_str t) params)
  ^ ")"

let print_decl (buf : Buffer.t) (d : Sast.decl) : unit =
  (match d with
  | Sast.DGlobal { name; gty; init; _ } ->
      Buffer.add_string buf
        ("global " ^ name ^ " : " ^ ty_str gty ^ " = " ^ expr_str init ^ "\n")
  | Sast.DFun { name; params; ret; body; _ } ->
      Buffer.add_string buf ("fun " ^ name ^ print_params params);
      (match ret with
      | Some t -> Buffer.add_string buf (" : " ^ ty_str t)
      | None -> ());
      Buffer.add_char buf ' ';
      print_block buf 0 body;
      Buffer.add_char buf '\n'
  | Sast.DPage { name; params; pinit; prender; _ } ->
      Buffer.add_string buf ("page " ^ name ^ print_params params ^ "\n");
      Buffer.add_string buf "init ";
      print_block buf 0 pinit;
      Buffer.add_string buf "\nrender ";
      print_block buf 0 prender;
      Buffer.add_char buf '\n');
  Buffer.add_char buf '\n'

(** Render a whole program as source text. *)
let program_to_string (p : Sast.program) : string =
  let buf = Buffer.create 1024 in
  List.iter (print_decl buf) p.decls;
  Buffer.contents buf

let stmt_to_string (s : Sast.stmt) : string =
  let buf = Buffer.create 64 in
  print_stmt buf 0 s;
  String.trim (Buffer.contents buf)
