(** Hand-written lexer for the surface language.

    Comments run from [//] to end of line.  The paper's [||] string
    concatenation is accepted as a synonym for [++].  Identifiers are
    ASCII [ [A-Za-z_][A-Za-z0-9_]* ]; names containing ['$'] are
    reserved for compiler-generated functions and rejected here. *)

exception Error of string * Loc.t

type lexed = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let make_state src = { src; offset = 0; line = 1; col = 1 }

let pos (st : state) : Loc.pos = { line = st.line; col = st.col; offset = st.offset }

let peek (st : state) : char option =
  if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 (st : state) : char option =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1]
  else None

let advance (st : state) =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let error st start fmt =
  Fmt.kstr (fun m -> raise (Error (m, Loc.make start (pos st)))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_trivia (st : state) =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | _ -> ()

let lex_number (st : state) (start : Loc.pos) : lexed =
  let buf = Buffer.create 8 in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char buf c;
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      Buffer.add_char buf '.';
      advance st;
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') -> (
      (* exponent: e[+-]?digits *)
      let save = (st.offset, st.line, st.col) in
      Buffer.add_char buf 'e';
      advance st;
      (match peek st with
      | Some ('+' | '-') ->
          Buffer.add_char buf (Option.get (peek st));
          advance st
      | _ -> ());
      match peek st with
      | Some c when is_digit c -> digits ()
      | _ ->
          (* not an exponent after all; roll back *)
          let o, l, c = save in
          st.offset <- o;
          st.line <- l;
          st.col <- c;
          let s = Buffer.contents buf in
          Buffer.clear buf;
          Buffer.add_string buf (String.sub s 0 (String.length s - 1)))
  | _ -> ());
  let text = Buffer.contents buf in
  match float_of_string_opt text with
  | Some f -> { tok = Token.NUMBER f; loc = Loc.make start (pos st) }
  | None -> error st start "malformed number literal %s" text

let lex_string (st : state) (start : Loc.pos) : lexed =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st start "unterminated string literal"
    | Some '"' ->
        advance st;
        { tok = Token.STRING (Buffer.contents buf); loc = Loc.make start (pos st) }
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
        | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
        | Some c -> error st start "invalid escape sequence \\%c" c
        | None -> error st start "unterminated string literal")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ()

let lex_ident (st : state) (start : Loc.pos) : lexed =
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_alnum c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let name = Buffer.contents buf in
  let tok =
    match List.assoc_opt name Token.keywords with
    | Some kw -> kw
    | None -> Token.IDENT name
  in
  { tok; loc = Loc.make start (pos st) }

let next_token (st : state) : lexed =
  skip_trivia st;
  let start = pos st in
  let simple tok n =
    for _ = 1 to n do
      advance st
    done;
    { tok; loc = Loc.make start (pos st) }
  in
  match peek st with
  | None -> { tok = Token.EOF; loc = Loc.make start start }
  | Some c when is_digit c -> lex_number st start
  | Some '"' -> lex_string st start
  | Some c when is_alpha c -> lex_ident st start
  | Some '(' -> simple LPAREN 1
  | Some ')' -> simple RPAREN 1
  | Some '{' -> simple LBRACE 1
  | Some '}' -> simple RBRACE 1
  | Some '[' -> simple LBRACKET 1
  | Some ']' -> simple RBRACKET 1
  | Some ',' -> simple COMMA 1
  | Some '.' -> simple DOT 1
  | Some ':' -> if peek2 st = Some '=' then simple ASSIGN 2 else simple COLON 1
  | Some '=' -> if peek2 st = Some '=' then simple EQEQ 2 else simple EQ 1
  | Some '!' ->
      if peek2 st = Some '=' then simple NEQ 2
      else error st start "unexpected character '!'"
  | Some '+' -> if peek2 st = Some '+' then simple CONCAT 2 else simple PLUS 1
  | Some '-' -> simple MINUS 1
  | Some '*' -> simple STAR 1
  | Some '/' -> simple SLASH 1
  | Some '%' -> simple PERCENT 1
  | Some '<' -> if peek2 st = Some '=' then simple LE 2 else simple LT 1
  | Some '>' -> if peek2 st = Some '=' then simple GE 2 else simple GT 1
  | Some '|' ->
      if peek2 st = Some '|' then simple CONCAT 2
      else error st start "unexpected character '|'"
  | Some c -> error st start "unexpected character %C" c

(** Tokenise a whole source string. *)
let tokenize (src : string) : lexed list =
  let st = make_state src in
  let rec go acc =
    let l = next_token st in
    if l.tok = Token.EOF then List.rev (l :: acc) else go (l :: acc)
  in
  go []
