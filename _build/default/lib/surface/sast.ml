(** Surface abstract syntax.

    The surface language is the TouchDevelop-flavoured notation the
    paper's figures use (Figs. 3-5): pages with [init]/[render] bodies,
    [boxed { ... }] statements, [post], [box.attr := e], [on tapped],
    local variables, loops and conditionals.  It compiles to the core
    calculus of Fig. 6 ({!Desugar}); in particular loops become
    recursion through generated global functions and conditionals
    become thunks, exactly the encodings Sec. 4.1 describes.

    Every statement carries a unique node id ([sid]); the id of a
    [boxed] statement doubles as its {!Live_core.Srcid.t}, giving the
    box ↔ code mapping of the live environment. *)

type ty =
  | TyNum
  | TyStr
  | TyTuple of ty list  (** [()] is [TyTuple []] *)
  | TyList of ty

let rec ty_equal a b =
  match (a, b) with
  | TyNum, TyNum | TyStr, TyStr -> true
  | TyTuple xs, TyTuple ys ->
      List.length xs = List.length ys && List.for_all2 ty_equal xs ys
  | TyList a, TyList b -> ty_equal a b
  | (TyNum | TyStr | TyTuple _ | TyList _), _ -> false

(** Surface types are exactly the arrow-free core types. *)
let rec ty_to_core : ty -> Live_core.Typ.t = function
  | TyNum -> Live_core.Typ.Num
  | TyStr -> Live_core.Typ.Str
  | TyTuple ts -> Live_core.Typ.Tuple (List.map ty_to_core ts)
  | TyList t -> Live_core.Typ.List (ty_to_core t)

let rec pp_ty ppf = function
  | TyNum -> Fmt.string ppf "number"
  | TyStr -> Fmt.string ppf "string"
  | TyTuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_ty) ts
  | TyList t -> Fmt.pf ppf "[%a]" pp_ty t

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat  (** [++] / the paper's [||] *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** short-circuit *)
  | Or  (** short-circuit *)

type unop = Neg | Not

type expr = { desc : desc; loc : Loc.t; eid : int }

and desc =
  | Num of float
  | Str of string
  | Bool of bool
  | Ref of string  (** local variable, parameter, or global *)
  | TupleE of expr list  (** [()] or [(e1, e2, ...)], n <> 1 *)
  | ListE of expr list  (** [[e1, ..., en]] *)
  | ProjE of expr * int  (** [e.n], 1-indexed *)
  | Call of string * expr list  (** user function or builtin *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt = { sdesc : sdesc; sloc : Loc.t; sid : int }

and sdesc =
  | SVar of string * expr  (** [var x := e] *)
  | SAssign of string * expr  (** [x := e] — local or global *)
  | SAttr of string * expr  (** [box.a := e] *)
  | SIf of expr * block * block  (** [else] branch may be empty *)
  | SWhile of expr * block
  | SForeach of string * expr * block  (** [foreach x in e { ... }] *)
  | SFor of string * expr * expr * block
      (** [for i from a to b { ... }] — iterates a <= i < b *)
  | SBoxed of block  (** [boxed { ... }]; [sid] is its {!Live_core.Srcid.t} *)
  | SPost of expr
  | SOn of string * block  (** [on tapped { ... }] *)
  | SPush of string * expr list
  | SPop
  | SReturn of expr  (** only as the final statement of a function *)
  | SExpr of expr

and block = stmt list

type decl =
  | DGlobal of { name : string; gty : ty; init : expr; dloc : Loc.t }
      (** initialiser restricted to literals *)
  | DFun of {
      name : string;
      params : (string * ty) list;
      ret : ty option;  (** [None] means unit *)
      body : block;
      dloc : Loc.t;
    }
  | DPage of {
      name : string;
      params : (string * ty) list;
      pinit : block;
      prender : block;
      dloc : Loc.t;
    }

type program = { decls : decl list }

let decl_name = function
  | DGlobal { name; _ } | DFun { name; _ } | DPage { name; _ } -> name

let decl_loc = function
  | DGlobal { dloc; _ } | DFun { dloc; _ } | DPage { dloc; _ } -> dloc

let find_decl (p : program) name =
  List.find_opt (fun d -> String.equal (decl_name d) name) p.decls

(* ------------------------------------------------------------------ *)
(* Traversals used by the editor                                       *)
(* ------------------------------------------------------------------ *)

(** Fold over every statement of a program, pre-order. *)
let fold_stmts (f : 'a -> stmt -> 'a) (acc : 'a) (p : program) : 'a =
  let rec go_block acc (b : block) = List.fold_left go_stmt acc b
  and go_stmt acc s =
    let acc = f acc s in
    match s.sdesc with
    | SIf (_, b1, b2) -> go_block (go_block acc b1) b2
    | SWhile (_, b)
    | SForeach (_, _, b)
    | SFor (_, _, _, b)
    | SBoxed b
    | SOn (_, b) ->
        go_block acc b
    | SVar _ | SAssign _ | SAttr _ | SPost _ | SPush _ | SPop | SReturn _
    | SExpr _ ->
        acc
  in
  List.fold_left
    (fun acc d ->
      match d with
      | DGlobal _ -> acc
      | DFun { body; _ } -> go_block acc body
      | DPage { pinit; prender; _ } -> go_block (go_block acc pinit) prender)
    acc p.decls

(** Find a statement by node id. *)
let find_stmt (p : program) (sid : int) : stmt option =
  fold_stmts
    (fun acc s -> match acc with Some _ -> acc | None -> if s.sid = sid then Some s else None)
    None p

(** Apply [f] to the statement with the given id, replacing it by the
    returned statements (deletion = [[]], rewriting = singleton,
    insertion = several).  Returns [None] if the id does not occur. *)
let rewrite_stmt (p : program) (sid : int) (f : stmt -> stmt list) :
    program option =
  let hit = ref false in
  let rec go_block (b : block) : block =
    List.concat_map
      (fun s ->
        if s.sid = sid then begin
          hit := true;
          f s
        end
        else [ { s with sdesc = go_desc s.sdesc } ])
      b
  and go_desc = function
    | SIf (c, b1, b2) -> SIf (c, go_block b1, go_block b2)
    | SWhile (c, b) -> SWhile (c, go_block b)
    | SForeach (x, e, b) -> SForeach (x, e, go_block b)
    | SFor (x, a, b', body) -> SFor (x, a, b', go_block body)
    | SBoxed b -> SBoxed (go_block b)
    | SOn (ev, b) -> SOn (ev, go_block b)
    | ( SVar _ | SAssign _ | SAttr _ | SPost _ | SPush _ | SPop | SReturn _
      | SExpr _ ) as d ->
        d
  in
  let decls =
    List.map
      (fun d ->
        match d with
        | DGlobal _ -> d
        | DFun r -> DFun { r with body = go_block r.body }
        | DPage r ->
            DPage
              { r with pinit = go_block r.pinit; prender = go_block r.prender })
      p.decls
  in
  if !hit then Some { decls } else None
