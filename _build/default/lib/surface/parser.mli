(** Recursive-descent parser for the surface language (grammar in the
    README).  Statement node ids are assigned deterministically
    left-to-right, so identical source yields identical ids — the
    property that keeps the box ↔ code mapping stable across no-op
    recompiles.  A [boxed] statement's id doubles as its
    {!Live_core.Srcid.t}. *)

exception Error of string * Loc.t

val parse_program : string -> Sast.program
(** @raise Error (or {!Lexer.Error}) with a location. *)

val parse_expr_string : string -> Sast.expr
(** A single expression (used by direct manipulation's value input);
    rejects trailing input. *)
