(** The minimal live program: a tap counter. *)

val source : string
val compiled : unit -> Live_surface.Compile.compiled
val core : unit -> Live_core.Program.t
