(** A pocket calculator: a 4x4 grid of tappable sibling boxes in
    horizontal rows and a handler state machine over three globals. *)

val source : string
val compiled : unit -> Live_surface.Compile.compiled
val core : unit -> Live_core.Program.t
