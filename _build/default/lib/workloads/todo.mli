(** A two-page todo list: handlers mutating a list-of-tuples model,
    conditional styling, navigation both ways, by-value capture of
    loop locals. *)

val source : string
val compiled : unit -> Live_surface.Compile.compiled
val core : unit -> Live_core.Program.t
