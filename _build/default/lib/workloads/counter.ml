(** The smallest interesting live program: a tap counter.  Used by the
    quickstart example and as the minimal fixture in many tests. *)

let source =
  {|global counter : number = 0

page start()
init {
  counter := 0
}
render {
  boxed {
    box.border := 1
    box.padding := 1
    post "taps: " ++ str(counter)
    on tapped {
      counter := counter + 1
    }
  }
  boxed {
    post "tap the box above"
  }
}
|}

let compiled () : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile source with
  | Ok c -> c
  | Error e ->
      invalid_arg
        ("counter workload does not compile: "
        ^ Live_surface.Compile.error_to_string e)

let core () = (compiled ()).Live_surface.Compile.core
