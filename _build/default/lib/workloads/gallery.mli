(** A styling gallery exercising every layout attribute plus deep
    nesting and recursive pages. *)

val source : string
val compiled : unit -> Live_surface.Compile.compiled
val core : unit -> Live_core.Program.t
