(** A two-page todo-list application: add items from a palette page,
    toggle them done by tapping, clear completed ones.

    Exercises the parts of the model the mortgage example does not:
    list-of-tuple globals mutated by handlers, conditional styling
    from model state, page navigation in both directions, and
    handlers that capture loop-iteration locals by value. *)

let source =
  {|// items are (label, done-flag)
global items : [(string, number)] = [("buy milk", 0), ("write tests", 0), ("read paper", 1)]
global next_labels : [string] = ["water plants", "fix bug", "ship release", "review diff"]

fun count_done() : number {
  var n := 0
  foreach it in items {
    if it.2 == 1 {
      n := n + 1
    }
  }
  return n
}

fun toggle(i : number) {
  var it := at(items, i)
  if it.2 == 1 {
    items := set_at(items, i, (it.1, 0))
  } else {
    items := set_at(items, i, (it.1, 1))
  }
}

fun clear_done() {
  var rest := []
  foreach it in items {
    if it.2 == 0 {
      rest := snoc(rest, it)
    }
  }
  items := rest
}

page start()
init { }
render {
  boxed {
    box.background := "teal"
    box.color := "white"
    box.padding := 1
    post "todo (" ++ str(count_done()) ++ "/" ++ str(len(items)) ++ " done)"
  }
  boxed {
    var i := 0
    foreach it in items {
      var idx := i
      boxed {
        box.border := 1
        if it.2 == 1 {
          box.color := "gray"
          post "[x] " ++ it.1
        } else {
          post "[ ] " ++ it.1
        }
        on tapped {
          toggle(idx)
        }
      }
      i := i + 1
    }
  }
  boxed {
    box.direction := "horizontal"
    boxed {
      box.border := 1
      post "add item"
      on tapped {
        push add_item()
      }
    }
    boxed {
      box.border := 1
      post "clear done"
      on tapped {
        clear_done()
      }
    }
  }
}

page add_item()
init { }
render {
  boxed {
    box.background := "teal"
    box.color := "white"
    box.padding := 1
    post "pick an item to add"
  }
  boxed {
    foreach label in next_labels {
      boxed {
        box.border := 1
        post "+ " ++ label
        on tapped {
          items := snoc(items, (label, 0))
          pop
        }
      }
    }
  }
}
|}

let compiled () : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile source with
  | Ok c -> c
  | Error e ->
      invalid_arg
        ("todo workload does not compile: "
        ^ Live_surface.Compile.error_to_string e)

let core () = (compiled ()).Live_surface.Compile.core
