lib/workloads/synthetic.ml: Buffer Live_surface Printf
