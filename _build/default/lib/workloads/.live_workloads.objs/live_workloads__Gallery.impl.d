lib/workloads/gallery.ml: Live_surface
