lib/workloads/counter.mli: Live_core Live_surface
