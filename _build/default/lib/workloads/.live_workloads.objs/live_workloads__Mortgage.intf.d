lib/workloads/mortgage.mli: Live_core Live_surface
