lib/workloads/calculator.ml: Live_surface
