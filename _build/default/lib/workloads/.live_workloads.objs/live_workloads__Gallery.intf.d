lib/workloads/gallery.mli: Live_core Live_surface
