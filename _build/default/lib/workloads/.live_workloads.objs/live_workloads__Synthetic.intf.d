lib/workloads/synthetic.mli: Live_surface
