lib/workloads/todo.mli: Live_core Live_surface
