lib/workloads/calculator.mli: Live_core Live_surface
