lib/workloads/mortgage.ml: Live_core Live_surface Printf
