lib/workloads/counter.ml: Live_surface
