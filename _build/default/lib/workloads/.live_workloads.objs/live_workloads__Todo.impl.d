lib/workloads/todo.ml: Live_surface
