(** A styling gallery: one page per widget pattern, reachable from an
    index page.  Exercises every attribute the layout engine supports
    (directions, margins, padding, borders, colors, font sizes,
    alignment, fixed sizes) plus deep nesting — the workload for the
    layout and hit-testing tests. *)

let source =
  {|global visits : number = 0

fun swatch(name : string) {
  boxed {
    box.direction := "horizontal"
    boxed {
      box.width := 12
      box.background := name
      post " "
    }
    boxed { post " " ++ name }
  }
}

page start()
init {
  visits := visits + 1
}
render {
  boxed {
    box.background := "purple"
    box.color := "white"
    box.padding := 1
    box.align := "center"
    post "widget gallery (visit " ++ str(visits) ++ ")"
  }
  boxed {
    box.border := 1
    post "colors"
    on tapped { push colors() }
  }
  boxed {
    box.border := 1
    post "nesting"
    on tapped { push nesting(4) }
  }
  boxed {
    box.border := 1
    post "typography"
    on tapped { push typography() }
  }
}

page colors()
init { }
render {
  boxed {
    box.bold := 1
    post "named colors"
  }
  boxed {
    foreach c in ["red", "green", "blue", "yellow", "orange",
                  "light blue", "pink", "teal", "gray"] {
      swatch(c)
    }
  }
}

page nesting(depth : number)
init { }
render {
  boxed {
    box.border := 1
    box.padding := 1
    post "depth " ++ str(depth)
    if depth > 0 {
      boxed {
        box.margin := 1
        box.border := 1
        post "nested " ++ str(depth - 1)
        if depth > 1 {
          boxed {
            box.background := "light gray"
            post "innermost"
          }
        }
      }
    }
    on tapped {
      if depth > 0 {
        push nesting(depth - 1)
      } else {
        pop
      }
    }
  }
}

page typography()
init { }
render {
  boxed {
    box.fontsize := 2
    post "big heading"
  }
  boxed {
    box.bold := 1
    post "bold line"
  }
  boxed {
    box.align := "center"
    post "centered"
  }
  boxed {
    box.align := "right"
    post "right-aligned"
  }
  boxed {
    box.direction := "horizontal"
    boxed { post "left" }
    boxed {
      box.width := 10
      box.align := "center"
      post "mid"
    }
    boxed { post "right" }
  }
}
|}

let compiled () : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile source with
  | Ok c -> c
  | Error e ->
      invalid_arg
        ("gallery workload does not compile: "
        ^ Live_surface.Compile.error_to_string e)

let core () = (compiled ()).Live_surface.Compile.core
