(** A pocket calculator: a display and a 4x4 button grid.

    The stress points are different from the other workloads: a grid
    of {e horizontal} rows each containing several tappable boxes
    (hit-testing must discriminate between siblings in a row), handler
    logic with a small state machine spread over three globals, and a
    render body that is almost pure styling. *)

let source =
  {|// model: accumulator, current entry, pending operation ("" = none)
global acc : number = 0
global entry : string = "0"
global op : string = ""

fun apply(a : number, b : number, operation : string) : number {
  var r := b
  if operation == "+" {
    r := a + b
  } else if operation == "-" {
    r := a - b
  } else if operation == "*" {
    r := a * b
  } else if operation == "/" {
    r := a / b
  }
  return r
}

fun press_digit(d : string) {
  if entry == "0" {
    entry := d
  } else {
    entry := entry ++ d
  }
}

fun press_op(operation : string) {
  acc := apply(acc, num(entry), op)
  op := operation
  entry := "0"
}

fun press_equals() {
  acc := apply(acc, num(entry), op)
  entry := str(acc)
  op := ""
}

fun press_clear() {
  acc := 0
  entry := "0"
  op := ""
}

fun key(label : string) {
  boxed {
    box.border := 1
    box.width := 5
    box.align := "center"
    post label
    on tapped {
      if label == "C" {
        press_clear()
      } else if label == "=" {
        press_equals()
      } else if label == "+" or label == "-" or label == "*" or label == "/" {
        press_op(label)
      } else {
        press_digit(label)
      }
    }
  }
}

fun keyrow(labels : [string]) {
  boxed {
    box.direction := "horizontal"
    foreach l in labels {
      key(l)
    }
  }
}

page start()
init { }
render {
  boxed {
    box.border := 1
    box.align := "right"
    box.background := "dark gray"
    box.color := "white"
    post entry
  }
  keyrow(["7", "8", "9", "/"])
  keyrow(["4", "5", "6", "*"])
  keyrow(["1", "2", "3", "-"])
  keyrow(["0", "C", "=", "+"])
}
|}

let compiled () : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile source with
  | Ok c -> c
  | Error e ->
      invalid_arg
        ("calculator workload does not compile: "
        ^ Live_surface.Compile.error_to_string e)

let core () = (compiled ()).Live_surface.Compile.core
