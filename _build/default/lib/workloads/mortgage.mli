(** The paper's running example (Figs. 1, 3, 4, 5): the mortgage
    calculator, with the Sec. 3.1 improvements as source variants. *)

val source :
  ?listings:int -> ?i1:bool -> ?i2:bool -> ?i3:bool -> unit -> string
(** [listings] sizes the simulated download (default 12); [i1] adds
    listing-row margins, [i2] formats balances as dollars-and-cents
    (the paper's exact algorithm, bug included), [i3] highlights every
    fifth amortization row. *)

val compiled :
  ?listings:int -> ?i1:bool -> ?i2:bool -> ?i3:bool -> unit ->
  Live_surface.Compile.compiled

val core :
  ?listings:int -> ?i1:bool -> ?i2:bool -> ?i3:bool -> unit ->
  Live_core.Program.t
