(** The paper's running example: the mortgage calculator of Figs. 1,
    3, 4 and 5 — a start page listing houses for sale and a detail
    page with the monthly payment and an amortization schedule whose
    term and rate can be adjusted by tapping.

    The paper's init body downloads listings from the web; we
    substitute a deterministic synthetic generator over the same code
    path (a state-effect init body filling the [listings] global) —
    see DESIGN.md's substitution table.

    [source] can also produce the improved versions of Sec. 3.1:
    - [i1]: wider margins on the listing rows (the direct-manipulation
      improvement);
    - [i2]: the balance printed in properly formatted dollars and
      cents (the paper's exact algorithm: floor for dollars, rounded
      remainder with zero-padding for cents);
    - [i3]: every fifth amortization row highlighted light blue. *)

let amortization_row_body ~(i2 : bool) ~(i3 : bool) : string =
  let highlight =
    if i3 then
      "\n      if mod(i, 5) == 4 {\n        box.background := \"light blue\"\n      }"
    else ""
  in
  let balance_post =
    if i2 then
      {|var dollars := floor(balance)
        var cents := str(round((balance - dollars) * 100))
        if count(cents) < 2 {
          cents := "0" ++ cents
        }
        post "balance: $" ++ str(dollars) ++ "." ++ cents|}
    else {|post "balance: $" ++ str(floor(balance))|}
  in
  Printf.sprintf
    {|    boxed {
      box.direction := "horizontal"%s
      boxed {
        box.width := 9
        post "year " ++ str(i + 1)
      }
      var m := 0
      while m < 12 and balance > 0 {
        var interest := balance * r
        balance := balance + interest - payment
        m := m + 1
      }
      if balance < 0 {
        balance := 0
      }
      boxed {
        %s
      }
    }|}
    highlight balance_post

(** The full program source.  [listings] controls how many houses the
    init body generates (the paper's screenshot shows about a dozen;
    the render benchmark scales it to hundreds). *)
let source ?(listings = 12) ?(i1 = false) ?(i2 = false) ?(i3 = false) () :
    string =
  let entry_margin = if i1 then 1 else 0 in
  Printf.sprintf
    {|// The mortgage calculator of "It's Alive!" (PLDI 2013), Figs. 1, 3-5.

global listings : [(string, number, string)] = []
global term_months : number = 360
global apr : number = 4.5

fun make_listing(i : number) : (string, number, string) {
  var streets := ["Maple St", "Oak Ave", "Pine Rd", "Cedar Ln",
                  "Elm Dr", "Lake View", "Hill Crest", "River Bend"]
  var cities := ["Seattle", "Redmond", "Bellevue", "Kirkland"]
  var street := at(streets, mod(i * 7, len(streets)))
  var city := at(cities, mod(i * 3, len(cities)))
  var house := 100 + floor(rand(i, 1) * 899)
  var price := 150000 + floor(rand(i, 2) * 85) * 10000
  return (str(house) ++ " " ++ street, price, city)
}

fun monthly_payment(principal : number, rate : number, months : number) : number {
  var r := rate / 1200
  var m := principal / months
  if r > 0 {
    m := principal * r / (1 - pow(1 + r, 0 - months))
  }
  return m
}

fun display_listentry(addr : string, price : number, city : string) {
  boxed {
    box.margin := %d
    box.padding := 1
    box.border := 1
    boxed {
      box.bold := 1
      post addr
    }
    boxed {
      box.direction := "horizontal"
      boxed { post "$" ++ str(price) }
      boxed { post "  - " ++ city }
    }
    on tapped {
      push detail(addr, price, city)
    }
  }
}

fun display_amortization(principal : number, rate : number, months : number) {
  var payment := monthly_payment(principal, rate, months)
  var balance := principal
  var r := rate / 1200
  var years := ceil(months / 12)
  for i from 0 to years {
%s
  }
}

page start()
init {
  listings := []
  for i from 0 to %d {
    listings := snoc(listings, make_listing(i))
  }
}
render {
  boxed {
    box.direction := "horizontal"
    box.background := "navy"
    box.color := "white"
    box.padding := 1
    boxed {
      box.bold := 1
      post "House Listings"
    }
    boxed { post " for Sale" }
  }
  boxed {
    foreach l in listings {
      display_listentry(l.1, l.2, l.3)
    }
  }
}

page detail(addr : string, price : number, city : string)
init { }
render {
  boxed {
    box.background := "navy"
    box.color := "white"
    box.padding := 1
    box.bold := 1
    post addr ++ ", " ++ city
  }
  boxed {
    post "price: $" ++ str(price)
  }
  boxed {
    box.direction := "horizontal"
    boxed {
      box.border := 1
      post "term: " ++ str(term_months) ++ " mo"
      on tapped {
        term_months := mod(term_months, 360) + 120
      }
    }
    boxed {
      box.border := 1
      post " apr: " ++ fixed(apr, 2) ++ "%%"
      on tapped {
        apr := mod(apr + 0.5, 10)
      }
    }
  }
  boxed {
    box.bold := 1
    post "monthly payment: $" ++ fixed(monthly_payment(price, apr, term_months), 2)
  }
  boxed {
    display_amortization(price, apr, term_months)
  }
}
|}
    entry_margin
    (amortization_row_body ~i2 ~i3)
    listings

(** Compile the workload, failing loudly on error (these sources are
    fixtures; a compile failure is a bug). *)
let compiled ?listings ?i1 ?i2 ?i3 () : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile (source ?listings ?i1 ?i2 ?i3 ()) with
  | Ok c -> c
  | Error e ->
      invalid_arg
        ("mortgage workload does not compile: "
        ^ Live_surface.Compile.error_to_string e)

let core ?listings ?i1 ?i2 ?i3 () : Live_core.Program.t =
  (compiled ?listings ?i1 ?i2 ?i3 ()).Live_surface.Compile.core
