(** The baseline the paper argues against: the conventional
    edit-compile-run cycle (Sec. 2).

    On every code change this runtime (1) stops the program, throwing
    away all state, (2) "recompiles" and restarts from the initial
    system state — re-running init bodies, re-downloading data — and
    (3) replays the recorded trace of user interactions to navigate
    back to the UI context the programmer was looking at (steps 4-5 of
    the Sec. 2 workflow, mechanised).

    Replay addresses taps by screen coordinates, so a code change that
    moves boxes makes the replay {e diverge}: the tap lands on a
    different box or on nothing, and the programmer ends up somewhere
    else — the trace-re-execution problem the paper's introduction
    describes.  {!update} reports whether any replayed tap failed to
    find a handler. *)

module Machine = Live_core.Machine

type t = {
  mutable program : Live_core.Program.t;
  mutable session : Live_runtime.Session.t;
  mutable trace : Live_runtime.Trace.t;
  width : int;
}

type error = Runtime_error of Machine.error

let error_to_string (Runtime_error e) = Machine.error_to_string e

let ( let* ) r f =
  match r with Ok v -> f v | Error e -> Error (Runtime_error e)

let create ?(width = 48) (program : Live_core.Program.t) :
    (t, error) result =
  let* session = Live_runtime.Session.create ~width program in
  Ok { program; session; trace = Live_runtime.Trace.empty; width }

let screenshot (t : t) = Live_runtime.Session.screenshot t.session
let state (t : t) = Live_runtime.Session.state t.session
let trace (t : t) = t.trace

let tap (t : t) ~x ~y : (Live_runtime.Session.tap_result, error) result =
  t.trace <- Live_runtime.Trace.add (Live_runtime.Trace.Tap { x; y }) t.trace;
  let* r = Live_runtime.Session.tap t.session ~x ~y in
  Ok r

let back (t : t) : (unit, error) result =
  t.trace <- Live_runtime.Trace.add Live_runtime.Trace.Back t.trace;
  let* () = Live_runtime.Session.back t.session in
  Ok ()

type replay_outcome = {
  replayed : int;  (** interactions re-executed *)
  missed_taps : int;  (** taps that found no handler after the change *)
}

(** Replay a trace against a fresh session. *)
let replay (session : Live_runtime.Session.t)
    (trace : Live_runtime.Trace.t) : (replay_outcome, error) result =
  let rec go acc = function
    | [] -> Ok acc
    | Live_runtime.Trace.Back :: rest ->
        let* () = Live_runtime.Session.back session in
        go { acc with replayed = acc.replayed + 1 } rest
    | Live_runtime.Trace.Tap { x; y } :: rest ->
        let* r = Live_runtime.Session.tap session ~x ~y in
        let acc =
          match r with
          | Live_runtime.Session.Tapped -> { acc with replayed = acc.replayed + 1 }
          | Live_runtime.Session.No_handler ->
              {
                replayed = acc.replayed + 1;
                missed_taps = acc.missed_taps + 1;
              }
        in
        go acc rest
  in
  go { replayed = 0; missed_taps = 0 } trace

(** A code change, the conventional way: full restart plus replay. *)
let update (t : t) (new_program : Live_core.Program.t) :
    (replay_outcome, error) result =
  (match Live_core.State_typing.check_code new_program with
  | Ok () -> ()
  | Error _ -> ());
  let* fresh = Live_runtime.Session.create ~width:t.width new_program in
  match replay fresh t.trace with
  | Error e -> Error e
  | Ok outcome ->
      t.program <- new_program;
      t.session <- fresh;
      Ok outcome
