(** A minimal retained-mode GUI library, for comparison.

    The paper contrasts the immediate approach ("construct a fresh view
    instead of updating the existing one") with the retained approach,
    where "a program builds and modifies a tree of widget objects to be
    rendered" — and observes that retained UIs are exactly why
    fix-and-continue fails to be live: "changing the code that
    initially builds this widget tree is meaningless as that code has
    already executed and will not execute again!" (Sec. 2).

    This module is that world in miniature: a mutable widget tree the
    application constructs once and then updates in place by writing
    code for every model change (the view-update problem).  The
    [incremental_rerender] benchmark compares targeted retained updates
    against immediate re-rendering, and the test-suite demonstrates the
    staleness problem the paper describes. *)

type widget = {
  mutable text : string option;
  mutable children : widget list;
  mutable background : Live_ui.Color.t;
  mutable color : Live_ui.Color.t;
  mutable margin : int;
  mutable padding : int;
  mutable border : bool;
  mutable horizontal : bool;
  mutable on_tap : (unit -> unit) option;
  mutable dirty : bool;
}

let make ?text ?(children = []) ?(background = Live_ui.Color.Default)
    ?(color = Live_ui.Color.Default) ?(margin = 0) ?(padding = 0)
    ?(border = false) ?(horizontal = false) ?on_tap () : widget =
  {
    text;
    children;
    background;
    color;
    margin;
    padding;
    border;
    horizontal;
    on_tap;
    dirty = true;
  }

let set_text (w : widget) (s : string) : unit =
  w.text <- Some s;
  w.dirty <- true

let set_background (w : widget) (c : Live_ui.Color.t) : unit =
  w.background <- c;
  w.dirty <- true

let add_child (w : widget) (c : widget) : unit =
  w.children <- w.children @ [ c ];
  w.dirty <- true

let remove_children (w : widget) : unit =
  w.children <- [];
  w.dirty <- true

(** Lower a widget tree to immediate-mode box content so both worlds
    share one renderer.  (The cost difference the benchmarks measure is
    in who has to rebuild what, not in the painting.) *)
let rec to_boxcontent (w : widget) : Live_core.Boxcontent.t =
  let attrs =
    List.concat
      [
        (if w.margin > 0 then
           [ Live_core.Boxcontent.Attr ("margin", Live_core.Ast.VNum (float_of_int w.margin)) ]
         else []);
        (if w.padding > 0 then
           [ Live_core.Boxcontent.Attr ("padding", Live_core.Ast.VNum (float_of_int w.padding)) ]
         else []);
        (if w.border then
           [ Live_core.Boxcontent.Attr ("border", Live_core.Ast.VNum 1.0) ]
         else []);
        (if w.horizontal then
           [ Live_core.Boxcontent.Attr ("direction", Live_core.Ast.VStr "horizontal") ]
         else []);
      ]
  in
  let text =
    match w.text with
    | Some s -> [ Live_core.Boxcontent.Leaf (Live_core.Ast.VStr s) ]
    | None -> []
  in
  let children =
    List.map
      (fun c -> Live_core.Boxcontent.Box (None, to_boxcontent c))
      w.children
  in
  attrs @ text @ children

let render ?(width = 48) (w : widget) : string =
  Live_ui.Render.screenshot ~width (to_boxcontent w)

(** Count dirty widgets — the bookkeeping a retained framework must do
    to know what to repaint. *)
let rec dirty_count (w : widget) : int =
  (if w.dirty then 1 else 0)
  + List.fold_left (fun n c -> n + dirty_count c) 0 w.children

let rec clean (w : widget) : unit =
  w.dirty <- false;
  List.iter clean w.children
