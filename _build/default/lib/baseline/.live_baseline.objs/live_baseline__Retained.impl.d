lib/baseline/retained.ml: List Live_core Live_ui
