lib/baseline/restart_runtime.mli: Live_core Live_runtime
