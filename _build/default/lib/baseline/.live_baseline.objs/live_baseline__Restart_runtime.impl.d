lib/baseline/restart_runtime.ml: Live_core Live_runtime
