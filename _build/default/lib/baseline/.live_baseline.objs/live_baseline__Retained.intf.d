lib/baseline/retained.mli: Live_core Live_ui
