(** The baseline the paper argues against: the conventional
    edit-compile-run cycle (Sec. 2).  Every code change stops the
    program, restarts from the initial state (re-running init bodies),
    and replays the recorded interaction trace to regain UI context.
    Replay addresses taps by coordinates, so edits that move boxes make
    it diverge — the Sec. 1 trace-re-execution problem, observable via
    {!replay_outcome.missed_taps}. *)

type t

type error = Runtime_error of Live_core.Machine.error

val error_to_string : error -> string

val create : ?width:int -> Live_core.Program.t -> (t, error) result

val screenshot : t -> string
val state : t -> Live_core.State.t
val trace : t -> Live_runtime.Trace.t

val tap :
  t -> x:int -> y:int -> (Live_runtime.Session.tap_result, error) result

val back : t -> (unit, error) result

type replay_outcome = {
  replayed : int;  (** interactions re-executed *)
  missed_taps : int;  (** taps that found no handler after the change *)
}

val replay :
  Live_runtime.Session.t ->
  Live_runtime.Trace.t ->
  (replay_outcome, error) result
(** Replay a trace against a fresh session (exposed for benchmark B3). *)

val update : t -> Live_core.Program.t -> (replay_outcome, error) result
(** The conventional cycle: full restart plus replay. *)
