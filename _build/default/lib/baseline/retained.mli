(** A minimal retained-mode GUI, for contrast: a mutable widget tree
    the application builds once and must then update by hand for every
    model change (the view-update problem).  Demonstrates why
    fix-and-continue is not live in a retained world: "changing the
    code that initially builds this widget tree is meaningless as that
    code has already executed" (Sec. 2). *)

type widget = {
  mutable text : string option;
  mutable children : widget list;
  mutable background : Live_ui.Color.t;
  mutable color : Live_ui.Color.t;
  mutable margin : int;
  mutable padding : int;
  mutable border : bool;
  mutable horizontal : bool;
  mutable on_tap : (unit -> unit) option;
  mutable dirty : bool;
}

val make :
  ?text:string ->
  ?children:widget list ->
  ?background:Live_ui.Color.t ->
  ?color:Live_ui.Color.t ->
  ?margin:int ->
  ?padding:int ->
  ?border:bool ->
  ?horizontal:bool ->
  ?on_tap:(unit -> unit) ->
  unit ->
  widget

val set_text : widget -> string -> unit
val set_background : widget -> Live_ui.Color.t -> unit
val add_child : widget -> widget -> unit
val remove_children : widget -> unit

val to_boxcontent : widget -> Live_core.Boxcontent.t
(** Lower to immediate-mode box content so both worlds share one
    painter. *)

val render : ?width:int -> widget -> string

val dirty_count : widget -> int
val clean : widget -> unit
