(** The incremental-rendering optimization (Sec. 5: "reuse box tree
    elements that have not changed"): transparency (cached and
    uncached sessions pixel-identical) and effectiveness (row reuse
    across re-renders). *)

open Live_runtime
open Helpers

let rows_src n = Live_workloads.Synthetic.flat_rows ~n

let test_transparent_over_interactions () =
  let plain = session_of ~width:40 (rows_src 30) in
  let cached = session_of ~width:40 ~incremental:true (rows_src 30) in
  let check_same what =
    Alcotest.(check string) what (Session.screenshot plain)
      (Session.screenshot cached)
  in
  check_same "initial render";
  (* tap row 7 in both: selection highlight moves *)
  ignore (ok_machine "tap" (Session.tap plain ~x:2 ~y:7));
  ignore (ok_machine "tap" (Session.tap cached ~x:2 ~y:7));
  check_same "after tap";
  ignore (ok_machine "tap" (Session.tap plain ~x:2 ~y:20));
  ignore (ok_machine "tap" (Session.tap cached ~x:2 ~y:20));
  check_same "after second tap"

let test_cache_reuses_unchanged_rows () =
  let s = session_of ~width:40 ~incremental:true (rows_src 50) in
  ignore (Session.screenshot s);
  let hits0, misses0 =
    match Session.cache_stats s with
    | Some st -> st
    | None -> Alcotest.fail "expected a cache"
  in
  (* tap a row: one row gains the highlight, one loses it; the other 48
     and their inner boxes are structurally unchanged *)
  ignore (ok_machine "tap" (Session.tap s ~x:2 ~y:7));
  ignore (Session.screenshot s);
  let hits1, misses1 = Option.get (Session.cache_stats s) in
  let new_hits = hits1 - hits0 and new_misses = misses1 - misses0 in
  Alcotest.(check bool)
    (Printf.sprintf "mostly hits (%d hits, %d misses)" new_hits new_misses)
    true
    (new_hits > 40 && new_misses < 10)

let test_transparent_across_code_update () =
  let plain = session_of ~width:40 (rows_src 20) in
  let cached = session_of ~width:40 ~incremental:true (rows_src 20) in
  let v2 = (ok_compile (rows_src 25)).core in
  ignore (ok_machine "update" (Session.update plain v2));
  ignore (ok_machine "update" (Session.update cached v2));
  Alcotest.(check string) "after update" (Session.screenshot plain)
    (Session.screenshot cached)

let test_transparent_on_workloads () =
  List.iter
    (fun (name, src) ->
      let plain = session_of ~width:46 src in
      let cached = session_of ~width:46 ~incremental:true src in
      Alcotest.(check string) name (Session.screenshot plain)
        (Session.screenshot cached))
    [
      ("mortgage", Live_workloads.Mortgage.source ~listings:6 ());
      ("todo", Live_workloads.Todo.source);
      ("gallery", Live_workloads.Gallery.source);
      ("nested", Live_workloads.Synthetic.nested ~depth:3 ~fanout:3);
    ]

let suite =
  [
    case "pixel-identical across interactions" test_transparent_over_interactions;
    case "unchanged rows hit the cache" test_cache_reuses_unchanged_rows;
    case "pixel-identical across code updates" test_transparent_across_code_update;
    case "pixel-identical on all workloads" test_transparent_on_workloads;
  ]
