(** The todo and gallery applications, driven end-to-end. *)

open Live_runtime
open Helpers

(* -- todo ----------------------------------------------------------- *)

let todo () = live_of ~width:46 Live_workloads.Todo.source

(** Find the (x, y) of the first occurrence of [text] on screen — a
    coordinate guaranteed to be inside the box showing it. *)
let point_at (ls : Live_session.t) (text : string) : int * int =
  let lines = String.split_on_char '\n' (Live_session.screenshot ls) in
  let rec go y = function
    | [] -> Alcotest.failf "no row containing %S" text
    | l :: rest -> (
        let n = String.length l and m = String.length text in
        let rec find x =
          if x + m > n then None
          else if String.sub l x m = text then Some x
          else find (x + 1)
        in
        match find 0 with Some x -> (x, y) | None -> go (y + 1) rest)
  in
  go 0 lines

let tap_text (ls : Live_session.t) (text : string) : unit =
  let x, y = point_at ls text in
  match Live_session.tap ls ~x ~y with
  | Ok Session.Tapped -> ()
  | Ok Session.No_handler -> Alcotest.failf "%S is not tappable" text
  | Error e -> Alcotest.failf "tap: %s" (Live_session.error_to_string e)

let test_todo_initial () =
  let ls = todo () in
  let shot = Live_session.screenshot ls in
  check_contains "title with counts" shot "todo (1/3 done)";
  check_contains "open item" shot "[ ] buy milk";
  check_contains "done item" shot "[x] read paper"

let test_todo_toggle () =
  let ls = todo () in
  tap_text ls "buy milk";
  let shot = Live_session.screenshot ls in
  check_contains "toggled" shot "[x] buy milk";
  check_contains "count updated" shot "todo (2/3 done)";
  (* toggle back *)
  tap_text ls "buy milk";
  check_contains "untoggled" (Live_session.screenshot ls) "[ ] buy milk"

let test_todo_clear_done () =
  let ls = todo () in
  tap_text ls "clear done";
  let shot = Live_session.screenshot ls in
  check_contains "count" shot "todo (0/2 done)";
  Alcotest.(check bool) "done item removed" false (contains shot "read paper")

let test_todo_add_item_via_second_page () =
  let ls = todo () in
  tap_text ls "add item";
  check_contains "picker page" (Live_session.screenshot ls) "pick an item";
  tap_text ls "water plants";
  (* the handler pops back after adding *)
  let shot = Live_session.screenshot ls in
  check_contains "back on the list" shot "todo (1/4 done)";
  check_contains "item added" shot "[ ] water plants"

let test_todo_live_edit_preserves_items () =
  let ls = todo () in
  tap_text ls "buy milk";
  check_contains "2 done" (Live_session.screenshot ls) "todo (2/3 done)";
  (* restyle the checkbox glyph in a live edit; items survive *)
  let edited = replace Live_workloads.Todo.source "[x] " "DONE " in
  match Live_session.edit ls edited with
  | Ok o ->
      check_contains "model survived the restyle" o.Live_session.screenshot
        "DONE buy milk"
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e)

(* -- gallery -------------------------------------------------------- *)

let gallery () = live_of ~width:46 Live_workloads.Gallery.source

let test_gallery_navigation_and_visits () =
  let ls = gallery () in
  check_contains "index" (Live_session.screenshot ls) "visit 1";
  tap_text ls "colors";
  check_contains "colors page" (Live_session.screenshot ls) "named colors";
  ignore (Live_session.back ls);
  (* the start page's init body does NOT re-run when we pop back to it:
     the page was never re-pushed, so visits stays 1 *)
  check_contains "no init re-run on pop" (Live_session.screenshot ls) "visit 1"

let test_gallery_nested_pages () =
  let ls = gallery () in
  tap_text ls "nesting";
  check_contains "depth 4" (Live_session.screenshot ls) "depth 4";
  (* tapping pushes ever-shallower nesting pages *)
  tap_text ls "depth 4";
  check_contains "depth 3" (Live_session.screenshot ls) "depth 3"

let test_gallery_typography () =
  let ls = gallery () in
  tap_text ls "typography";
  let shot = Live_session.screenshot ls in
  check_contains "heading" shot "big heading";
  check_contains "centered" shot "centered";
  (* right-aligned text ends at the right margin *)
  let line =
    List.find (fun l -> contains l "right-aligned")
      (String.split_on_char '\n' shot)
  in
  Alcotest.(check int) "flush right" 46 (String.length line)

let suite =
  [
    case "todo: initial render" test_todo_initial;
    case "todo: toggling items" test_todo_toggle;
    case "todo: clear done" test_todo_clear_done;
    case "todo: add via second page" test_todo_add_item_via_second_page;
    case "todo: live restyle preserves items" test_todo_live_edit_preserves_items;
    case "gallery: navigation and init-once" test_gallery_navigation_and_visits;
    case "gallery: recursive nesting pages" test_gallery_nested_pages;
    case "gallery: typography page" test_gallery_typography;
  ]
