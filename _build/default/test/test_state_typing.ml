(** System-state typing (Fig. 11): [C |- C], [C |- D], [C |- S],
    [C |- P], [C |- Q] and T-SYS. *)

open Live_core
open Helpers

let ok_code defs =
  match State_typing.check_code (Program.of_defs defs) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "expected well-formed code: %s" m

let bad_code name defs =
  match State_typing.check_code (Program.of_defs defs) with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected ill-formed code" name

let gdef ?(name = "g") ?(ty = Typ.Num) ?(init = vnum 0.0) () =
  Program.Global { name; ty; init }

let start_page ?(render = Ast.eunit) () =
  Program.Page
    {
      name = "start";
      arg_ty = Typ.unit_;
      init = lam "_" Typ.unit_ Ast.eunit;
      render = lam "_" Typ.unit_ render;
    }

let test_check_code_accepts () =
  ok_code [ gdef (); start_page ~render:(Ast.Post (Ast.Get "g")) () ];
  ok_code
    [
      Program.Func
        {
          name = "f";
          ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
          body = lam "x" Typ.Num (Ast.Var "x");
        };
    ]

let test_duplicate_names () =
  (* the paper uses a single Defs(C) set across globals/functions/pages *)
  bad_code "two globals" [ gdef (); gdef () ];
  bad_code "global and page share a name"
    [
      gdef ~name:"start" ();
      start_page ();
    ]

let test_arrow_free_globals () =
  (* T-C-GLOBAL: tau is ->-free — this is what makes "no stale code
     after UPDATE" (Sec. 4.2) a theorem *)
  bad_code "handler-typed global"
    [
      Program.Global
        {
          name = "h";
          ty = Typ.handler;
          init = Ast.VLam ("_", Typ.unit_, Ast.eunit);
        };
    ]

let test_global_init_type () =
  bad_code "initial value type mismatch"
    [ gdef ~ty:Typ.Num ~init:(vstr "no") () ]

let test_function_typing () =
  bad_code "body type mismatch"
    [
      Program.Func
        {
          name = "f";
          ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Str);
          body = lam "x" Typ.Num (Ast.Var "x");
        };
    ];
  bad_code "declared pure but stateful"
    [
      gdef ();
      Program.Func
        {
          name = "f";
          ty = Typ.Fn (Typ.unit_, Eff.Pure, Typ.unit_);
          body = lam "_" Typ.unit_ (Ast.Set ("g", num 1.0));
        };
    ];
  bad_code "non-function type"
    [ Program.Func { name = "f"; ty = Typ.Num; body = num 1.0 } ]

let test_page_typing () =
  (* T-C-PAGE: init at tau -s-> (), render at tau -r-> () *)
  bad_code "render body writes a global"
    [
      gdef ();
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ Ast.eunit;
          render = lam "_" Typ.unit_ (Ast.Set ("g", num 1.0));
        };
    ];
  bad_code "init body posts a box"
    [
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ (Ast.Post (num 1.0));
          render = lam "_" Typ.unit_ Ast.eunit;
        };
    ];
  bad_code "function-typed page argument"
    [
      Program.Page
        {
          name = "p";
          arg_ty = Typ.handler;
          init = lam "h" Typ.handler Ast.eunit;
          render = lam "h" Typ.handler Ast.eunit;
        };
    ]

let test_check_start () =
  let prog = Program.of_defs [ gdef () ] in
  (match State_typing.check_start prog with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing start page must be rejected");
  let prog2 =
    Program.of_defs
      [
        Program.Page
          {
            name = "start";
            arg_ty = Typ.Num;
            init = lam "x" Typ.Num Ast.eunit;
            render = lam "x" Typ.Num Ast.eunit;
          };
      ]
  in
  match State_typing.check_start prog2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "start page with a parameter must be rejected"

let prog_g =
  Program.of_defs [ gdef (); start_page ~render:(Ast.Post (Ast.Get "g")) () ]

let test_store_typing () =
  let good = Store.write "g" (vnum 3.0) Store.empty in
  (match State_typing.check_store prog_g good with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let bad = Store.write "g" (vstr "no") Store.empty in
  (match State_typing.check_store prog_g bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ill-typed store value accepted");
  let undeclared = Store.write "zz" (vnum 1.0) Store.empty in
  match State_typing.check_store prog_g undeclared with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undeclared global accepted"

let test_stack_typing () =
  (match State_typing.check_stack prog_g [ ("start", Ast.vunit) ] with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match State_typing.check_stack prog_g [ ("nope", Ast.vunit) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown page accepted");
  match State_typing.check_stack prog_g [ ("start", vnum 1.0) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ill-typed page argument accepted"

let test_queue_typing () =
  let handler = Ast.VLam ("_", Typ.unit_, Ast.Set ("g", num 1.0)) in
  let q =
    Fqueue.of_list
      [ Event.Exec handler; Event.Push ("start", Ast.vunit); Event.Pop ]
  in
  (match State_typing.check_queue prog_g q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let bad = Fqueue.of_list [ Event.Exec (vnum 1.0) ] in
  match State_typing.check_queue prog_g bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-thunk exec event accepted"

let test_display_typing () =
  let good =
    [
      Boxcontent.Box
        ( None,
          [
            Boxcontent.Leaf (vstr "hi");
            Boxcontent.Attr ("margin", vnum 1.0);
            Boxcontent.Attr
              ("ontap", Ast.VLam ("_", Typ.unit_, Ast.Set ("g", num 1.0)));
          ] );
    ]
  in
  (match State_typing.check_display prog_g (State.Shown good) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match State_typing.check_display prog_g State.Invalid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "T-D-INV: %s" m);
  let bad = [ Boxcontent.Attr ("margin", vstr "wide") ] in
  match State_typing.check_display prog_g (State.Shown bad) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ill-typed attribute accepted"

let test_t_sys_on_boot () =
  let st = boot prog_g in
  match State_typing.check_state st with
  | Ok () -> ()
  | Error m -> Alcotest.failf "booted state ill-typed: %s" m

let suite =
  [
    case "C |- C accepts well-formed code" test_check_code_accepts;
    case "duplicate definitions rejected" test_duplicate_names;
    case "globals must be arrow-free" test_arrow_free_globals;
    case "global initial values typed" test_global_init_type;
    case "T-C-FUN" test_function_typing;
    case "T-C-PAGE effect discipline" test_page_typing;
    case "T-SYS start page" test_check_start;
    case "C |- S" test_store_typing;
    case "C |- P" test_stack_typing;
    case "C |- Q" test_queue_typing;
    case "C |- D" test_display_typing;
    case "booted state is well-typed" test_t_sys_on_boot;
  ]
