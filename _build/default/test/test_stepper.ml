(** The small-step tracer. *)

open Live_core
open Helpers

let test_trace_arithmetic () =
  let t =
    Live_runtime.Stepper.trace ~mode:Eff.Pure Program.empty Store.empty
      (add (num 1.0) (prim "mul" [ num 2.0; num 3.0 ]))
  in
  (match t.Live_runtime.Stepper.outcome with
  | Live_runtime.Stepper.Finished v ->
      Alcotest.check value "result" (vnum 7.0) v
  | _ -> Alcotest.fail "expected a value");
  (* inner redex first, then the addition, then done: 2 steps + final *)
  Alcotest.(check int) "step count" 3
    (List.length t.Live_runtime.Stepper.steps)

let test_trace_notes_effects () =
  let prog =
    Program.of_defs
      [ Program.Global { name = "g"; ty = Typ.Num; init = vnum 0.0 } ]
  in
  let t =
    Live_runtime.Stepper.trace ~mode:Eff.State prog Store.empty
      (Ast.Set ("g", num 5.0))
  in
  let noted =
    List.exists
      (fun (e : Live_runtime.Stepper.entry) ->
        match e.Live_runtime.Stepper.note with
        | Some n -> Helpers.contains n "store"
        | None -> false)
      t.Live_runtime.Stepper.steps
  in
  Alcotest.(check bool) "store change noted" true noted;
  Alcotest.check value "final store" (vnum 5.0)
    (Option.get (Store.find "g" t.Live_runtime.Stepper.store))

let test_trace_stuck () =
  let t =
    Live_runtime.Stepper.trace ~mode:Eff.Pure Program.empty Store.empty
      (Ast.Get "nope")
  in
  match t.Live_runtime.Stepper.outcome with
  | Live_runtime.Stepper.Got_stuck _ -> ()
  | _ -> Alcotest.fail "expected stuck"

let test_trace_limit () =
  let prog =
    Program.of_defs
      [
        Program.Func
          {
            name = "loop";
            ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
            body = lam "x" Typ.Num (Ast.App (Ast.Fn "loop", Ast.Var "x"));
          };
      ]
  in
  let t =
    Live_runtime.Stepper.trace ~mode:Eff.Pure ~limit:20 prog Store.empty
      (Ast.App (Ast.Fn "loop", num 1.0))
  in
  match t.Live_runtime.Stepper.outcome with
  | Live_runtime.Stepper.Ran_out 20 -> ()
  | _ -> Alcotest.fail "expected the limit to trigger"

let test_trace_source () =
  let c = ok_compile Live_workloads.Counter.source in
  match Live_runtime.Stepper.trace_source c "1 + 1" with
  | Ok t ->
      (match t.Live_runtime.Stepper.outcome with
      | Live_runtime.Stepper.Finished _ -> ()
      | o ->
          Alcotest.failf "unexpected outcome: %s"
            (Fmt.str "%a" Live_runtime.Stepper.pp_outcome o));
      (* the rendering shows the numbered steps *)
      let text = Live_runtime.Stepper.to_string t in
      check_contains "numbered" text "0  ";
      check_contains "value line" text "value:"
  | Error m -> Alcotest.fail m

let test_trace_source_uses_program () =
  let c = ok_compile (Live_workloads.Mortgage.source ()) in
  match
    Live_runtime.Stepper.trace_source ~limit:5000 c
      "monthly_payment(100000, 0, 100)"
  with
  | Ok t -> (
      match t.Live_runtime.Stepper.outcome with
      | Live_runtime.Stepper.Finished _ -> ()
      | o ->
          Alcotest.failf "unexpected outcome: %s"
            (Fmt.str "%a" Live_runtime.Stepper.pp_outcome o))
  | Error m -> Alcotest.fail m

let suite =
  [
    case "arithmetic trace" test_trace_arithmetic;
    case "effect notes" test_trace_notes_effects;
    case "stuck terms reported" test_trace_stuck;
    case "step limit" test_trace_limit;
    case "surface expressions" test_trace_source;
    case "traces can call program functions" test_trace_source_uses_program;
  ]
