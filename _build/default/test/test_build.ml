(** The program-construction eDSL: build a complete two-page app in
    OCaml, validate it, run it through the machine. *)

open Live_core
open Live_core.Build.Infix
open Helpers

module B = Build

let scoreboard () : Program.t =
  B.program_exn
    [
      B.global "score" Typ.Num (Ast.VNum 0.0);
      B.func "bump" ~param:("by", Typ.Num) ~eff:Eff.State ~ret:Typ.unit_
        (B.set "score" (B.get "score" +! B.var "by"));
      B.page "start"
        ~init:(B.set "score" (B.ni 5))
        ~render:
          (B.boxed ~id:1
             (B.seqs
                [
                  B.post (B.s "score: " ^! B.str_of (B.get "score"));
                  B.on_tap (B.call "bump" (B.ni 3));
                  B.attr "border" (B.ni 1);
                ]))
        ();
      B.page "detail" ~arg:("x", Typ.Num)
        ~init:B.unit_
        ~render:(B.post (B.var "x"))
        ();
    ]

let test_builds_and_validates () =
  let p = scoreboard () in
  Alcotest.(check int) "four defs" 4 (List.length (Program.defs p))

let test_runs () =
  let st = boot (scoreboard ()) in
  Alcotest.(check (float 0.0)) "init ran" 5.0 (get_store_num st "score");
  let st = stable (ok_machine "tap" (Machine.tap_first st)) in
  Alcotest.(check (float 0.0)) "handler ran" 8.0 (get_store_num st "score")

let test_if_and_let () =
  let e =
    B.let_ "x" Typ.Num (B.ni 10)
      (B.if_ Typ.Str
         (B.var "x" >! B.ni 5)
         (B.s "big") (B.s "small"))
  in
  Alcotest.check value "conditional" (vstr "big")
    (Eval.eval_pure Program.empty Store.empty e)

let test_validation_rejects () =
  (match
     B.program
       [
         B.global "g" Typ.Num (Ast.VNum 0.0);
         B.page "start"
           ~init:B.unit_
           ~render:(B.set "g" (B.ni 1)) (* render writes the model *)
           ();
       ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "render body writing a global must be rejected");
  match B.program [ B.global "g" Typ.Num (Ast.VNum 0.0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing start page must be rejected"

let test_infix_ops () =
  let ev e = Eval.eval_pure Program.empty Store.empty e in
  Alcotest.check value "arith" (vnum 7.0) (ev (B.ni 1 +! (B.ni 2 *! B.ni 3)));
  Alcotest.check value "mod" (vnum 1.0) (ev (B.ni 7 %! B.ni 3));
  Alcotest.check value "cmp" Ast.vtrue (ev (B.ni 1 <=! B.ni 1));
  Alcotest.check value "concat" (vstr "ab") (ev (B.s "a" ^! B.s "b"))

let suite =
  [
    case "builds and validates" test_builds_and_validates;
    case "runs through the machine" test_runs;
    case "if_/let_ combinators" test_if_and_let;
    case "validation rejects bad programs" test_validation_rejects;
    case "infix operators" test_infix_ops;
  ]
