(** Primitive typing and delta-rules.  Every primitive gets at least
    one behavioural test; soundness (delta result matches declared
    type) is property-checked per family. *)

open Live_core
open Helpers

let run name ?(targs = []) args =
  match Prim.delta name targs args with
  | Ok (Ast.Val v) -> v
  | Ok e -> (
      (* cond returns a residual application; finish it purely *)
      match Eval.eval_pure Program.empty Store.empty e with
      | v -> v)
  | Error m -> Alcotest.failf "%%%s stuck: %s" name m

let n = vnum
let s = vstr

let check_num name ?targs args expected =
  Alcotest.check value name (n expected) (run name ?targs args)

let check_str name ?targs args expected =
  Alcotest.check value name (s expected) (run name ?targs args)

let test_arithmetic () =
  check_num "add" [ n 2.0; n 3.0 ] 5.0;
  check_num "sub" [ n 2.0; n 3.0 ] (-1.0);
  check_num "mul" [ n 4.0; n 2.5 ] 10.0;
  check_num "div" [ n 9.0; n 2.0 ] 4.5;
  check_num "pow" [ n 2.0; n 10.0 ] 1024.0;
  check_num "min" [ n 2.0; n 3.0 ] 2.0;
  check_num "max" [ n 2.0; n 3.0 ] 3.0;
  check_num "neg" [ n 2.0 ] (-2.0);
  check_num "floor" [ n 2.7 ] 2.0;
  check_num "ceil" [ n 2.1 ] 3.0;
  check_num "round" [ n 2.5 ] 3.0;
  check_num "abs" [ n (-2.0) ] 2.0;
  check_num "sqrt" [ n 16.0 ] 4.0;
  check_num "exp" [ n 0.0 ] 1.0;
  check_num "ln" [ n 1.0 ] 0.0

let test_mod_sign () =
  (* math->mod: result carries the divisor's sign *)
  check_num "mod" [ n 7.0; n 3.0 ] 1.0;
  check_num "mod" [ n (-7.0); n 3.0 ] 2.0;
  check_num "mod" [ n 7.0; n (-3.0) ] (-2.0);
  match run "mod" [ n 7.0; n 0.0 ] with
  | Ast.VNum f -> Alcotest.(check bool) "mod by zero is nan" true (Float.is_nan f)
  | _ -> Alcotest.fail "mod returned a non-number"

let test_comparisons () =
  let t = Typ.Num in
  check_num "eq" ~targs:[ t ] [ n 2.0; n 2.0 ] 1.0;
  check_num "eq" ~targs:[ t ] [ n 2.0; n 3.0 ] 0.0;
  check_num "ne" ~targs:[ t ] [ n 2.0; n 3.0 ] 1.0;
  check_num "lt" ~targs:[ t ] [ n 2.0; n 3.0 ] 1.0;
  check_num "le" ~targs:[ t ] [ n 3.0; n 3.0 ] 1.0;
  check_num "gt" ~targs:[ t ] [ n 2.0; n 3.0 ] 0.0;
  check_num "ge" ~targs:[ t ] [ n 2.0; n 3.0 ] 0.0;
  (* string ordering is lexicographic *)
  check_num "lt" ~targs:[ Typ.Str ] [ s "abc"; s "abd" ] 1.0;
  (* generic equality on structured values *)
  check_num "eq"
    ~targs:[ Typ.Tuple [ Typ.Num; Typ.Str ] ]
    [ Ast.VTuple [ n 1.0; s "a" ]; Ast.VTuple [ n 1.0; s "a" ] ]
    1.0;
  check_num "eq"
    ~targs:[ Typ.List Typ.Num ]
    [ Ast.VList (Typ.Num, [ n 1.0 ]); Ast.VList (Typ.Num, []) ]
    0.0

let test_cond_laziness () =
  (* cond must apply only the selected thunk: the untaken branch would
     get stuck (unbound variable), so taking it would fail the test *)
  let stuck_branch = Ast.VLam ("_", Typ.unit_, Ast.Var "boom") in
  let ok_branch = Ast.VLam ("_", Typ.unit_, num 42.0) in
  check_num "cond" ~targs:[ Typ.Num ]
    [ n 1.0; ok_branch; stuck_branch ]
    42.0;
  check_num "cond" ~targs:[ Typ.Num ]
    [ n 0.0; stuck_branch; ok_branch ]
    42.0

let test_strings () =
  check_str "concat" [ s "foo"; s "bar" ] "foobar";
  check_num "str_len" [ s "hello" ] 5.0;
  check_str "substr" [ s "hello"; n 1.0; n 3.0 ] "ell";
  check_str "substr" [ s "hello"; n 3.0; n 99.0 ] "lo";
  check_num "str_index" [ s "hello"; s "ll" ] 2.0;
  check_num "str_index" [ s "hello"; s "zz" ] (-1.0);
  check_num "str_contains" [ s "hello"; s "ell" ] 1.0;
  check_str "str_repeat" [ s "ab"; n 3.0 ] "ababab";
  check_str "to_upper" [ s "MiXed" ] "MIXED";
  check_str "to_lower" [ s "MiXed" ] "mixed";
  check_str "trim" [ s "  x  " ] "x";
  check_str "char_at" [ s "abc"; n 1.0 ] "b";
  check_str "char_at" [ s "abc"; n 9.0 ] "";
  check_str "str_of" [ n 42.0 ] "42";
  check_str "str_of" [ n 2.5 ] "2.5";
  check_num "num_of" [ s " 3.5 " ] 3.5;
  check_str "fmt_fixed" [ n 3.14159; n 2.0 ] "3.14";
  check_str "fmt_fixed" [ n 2.0; n 2.0 ] "2.00";
  check_str "pad_left" [ s "7"; n 3.0; s "0" ] "007";
  check_str "pad_right" [ s "ab"; n 4.0; s "." ] "ab..";
  Alcotest.check value "split"
    (Ast.VList (Typ.Str, [ s "a"; s "b"; s "c" ]))
    (run "split" [ s "a,b,c"; s "," ])

let test_num_of_garbage () =
  match run "num_of" [ s "not a number" ] with
  | Ast.VNum f -> Alcotest.(check bool) "nan" true (Float.is_nan f)
  | _ -> Alcotest.fail "num_of returned a non-number"

let nums xs = Ast.VList (Typ.Num, List.map n xs)

let test_lists () =
  let t = [ Typ.Num ] in
  Alcotest.check value "nil" (nums []) (run "nil" ~targs:t []);
  Alcotest.check value "cons" (nums [ 1.0; 2.0 ])
    (run "cons" ~targs:t [ n 1.0; nums [ 2.0 ] ]);
  Alcotest.check value "snoc" (nums [ 1.0; 2.0 ])
    (run "snoc" ~targs:t [ nums [ 1.0 ]; n 2.0 ]);
  Alcotest.check value "append" (nums [ 1.0; 2.0; 3.0 ])
    (run "append" ~targs:t [ nums [ 1.0 ]; nums [ 2.0; 3.0 ] ]);
  check_num "len" ~targs:t [ nums [ 1.0; 2.0; 3.0 ] ] 3.0;
  check_num "nth" ~targs:t [ nums [ 5.0; 6.0 ]; n 1.0 ] 6.0;
  check_num "head" ~targs:t [ nums [ 5.0; 6.0 ] ] 5.0;
  Alcotest.check value "tail" (nums [ 6.0 ])
    (run "tail" ~targs:t [ nums [ 5.0; 6.0 ] ]);
  Alcotest.check value "tail of empty" (nums [])
    (run "tail" ~targs:t [ nums [] ]);
  Alcotest.check value "rev" (nums [ 2.0; 1.0 ])
    (run "rev" ~targs:t [ nums [ 1.0; 2.0 ] ]);
  Alcotest.check value "take" (nums [ 1.0; 2.0 ])
    (run "take" ~targs:t [ nums [ 1.0; 2.0; 3.0 ]; n 2.0 ]);
  Alcotest.check value "drop" (nums [ 3.0 ])
    (run "drop" ~targs:t [ nums [ 1.0; 2.0; 3.0 ]; n 2.0 ]);
  Alcotest.check value "set_nth" (nums [ 1.0; 9.0 ])
    (run "set_nth" ~targs:t [ nums [ 1.0; 2.0 ]; n 1.0; n 9.0 ]);
  Alcotest.check value "set_nth out of range is identity"
    (nums [ 1.0; 2.0 ])
    (run "set_nth" ~targs:t [ nums [ 1.0; 2.0 ]; n 7.0; n 9.0 ]);
  Alcotest.check value "range" (nums [ 2.0; 3.0; 4.0 ])
    (run "range" [ n 2.0; n 5.0 ]);
  Alcotest.check value "empty range" (nums []) (run "range" [ n 5.0; n 2.0 ]);
  check_num "list_contains" ~targs:t [ nums [ 1.0; 2.0 ]; n 2.0 ] 1.0;
  check_num "index_of" ~targs:t [ nums [ 4.0; 5.0; 6.0 ]; n 6.0 ] 2.0;
  Alcotest.check value "index_of missing" (n (-1.0))
    (run "index_of" ~targs:t [ nums []; n 6.0 ])

let test_partial_prims_stuck () =
  (* head/nth on empty lists are the documented partial delta-rules *)
  (match Prim.delta "head" [ Typ.Num ] [ nums [] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "head of empty list should be stuck");
  match Prim.delta "nth" [ Typ.Num ] [ nums []; n 0.0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nth out of bounds should be stuck"

let test_rand_deterministic () =
  let a = run "rand2" [ n 1.0; n 2.0 ] in
  let b = run "rand2" [ n 1.0; n 2.0 ] in
  Alcotest.check value "same seed same value" a b;
  let c = run "rand2" [ n 1.0; n 3.0 ] in
  Alcotest.(check bool) "different seed different value" false
    (Ast.equal_value a c);
  match a with
  | Ast.VNum f ->
      Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  | _ -> Alcotest.fail "rand2 returned a non-number"

let test_typing_rejects () =
  let bad name targs argtys =
    match Prim.typing name targs argtys with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%%%s should be ill-typed" name
  in
  bad "add" [] [ Typ.Num; Typ.Str ];
  bad "concat" [] [ Typ.Num; Typ.Num ];
  bad "cond" [ Typ.Num ] [ Typ.Num; Typ.Num; Typ.Num ];
  bad "eq" [ Typ.handler ] [ Typ.handler; Typ.handler ];
  (* arrow types have no equality *)
  bad "nth" [ Typ.Num ] [ Typ.List Typ.Str; Typ.Num ];
  bad "nosuchprim" [] []

let test_cond_effect_join () =
  (* cond's latent effect is the join of its branches; state+render has
     no join *)
  let th mu = Typ.Fn (Typ.unit_, mu, Typ.unit_) in
  (match Prim.typing "cond" [ Typ.unit_ ] [ Typ.Num; th Eff.State; th Eff.Render ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "state/render branches must not join");
  match Prim.typing "cond" [ Typ.unit_ ] [ Typ.Num; th Eff.Pure; th Eff.State ] with
  | Ok { Prim.eff; _ } -> Alcotest.check Helpers.eff "join" Eff.State eff
  | Error m -> Alcotest.fail m

(* soundness: for random binary arithmetic the result is a number *)
let prop_arith_sound =
  Helpers.qcheck "arithmetic delta returns numbers"
    QCheck2.Gen.(
      triple
        (oneofl [ "add"; "sub"; "mul"; "div"; "pow"; "min"; "max"; "mod" ])
        (float_range (-1e6) 1e6)
        (float_range (-1e6) 1e6))
    (fun (name, a, b) ->
      match Prim.delta name [] [ vnum a; vnum b ] with
      | Ok (Ast.Val (Ast.VNum _)) -> true
      | _ -> false)

let prop_string_roundtrip =
  Helpers.qcheck "num_of (str_of n) = n for integers"
    QCheck2.Gen.(int_range (-100000) 100000)
    (fun i ->
      let f = float_of_int i in
      match run "num_of" [ run "str_of" [ vnum f ] ] with
      | Ast.VNum g -> Float.equal f g
      | _ -> false)

let prop_list_ops =
  Helpers.qcheck "rev (rev l) = l; len (append a b) = len a + len b"
    QCheck2.Gen.(pair (list_size (int_range 0 20) (float_range 0. 100.))
                   (list_size (int_range 0 20) (float_range 0. 100.)))
    (fun (a, b) ->
      let la = nums a and lb = nums b in
      let targs = [ Typ.Num ] in
      let rev l = run "rev" ~targs [ l ] in
      Ast.equal_value la (rev (rev la))
      &&
      match run "len" ~targs [ run "append" ~targs [ la; lb ] ] with
      | Ast.VNum f -> int_of_float f = List.length a + List.length b
      | _ -> false)

let suite =
  [
    case "arithmetic" test_arithmetic;
    case "mod follows the divisor's sign" test_mod_sign;
    case "comparisons" test_comparisons;
    case "cond is lazy" test_cond_laziness;
    case "strings" test_strings;
    case "num_of on garbage is nan" test_num_of_garbage;
    case "lists" test_lists;
    case "partial primitives are stuck, not wrong" test_partial_prims_stuck;
    case "rand2 is deterministic" test_rand_deterministic;
    case "ill-typed instantiations rejected" test_typing_rejects;
    case "cond joins branch effects" test_cond_effect_join;
    prop_arith_sound;
    prop_string_roundtrip;
    prop_list_ops;
  ]
