(** Full-frame golden screenshots: the mortgage calculator's two pages
    (Fig. 1) at width 40 with 3 listings, byte for byte.  Any change
    to the renderer, layout engine, lowering, evaluator, or the
    workload itself shows up here as a readable diff. *)

open Live_runtime
open Helpers

let start_page_golden =
  "\n\
  \ House Listings for Sale\n\
   \n\
   +--------------------------------------+\n\
   |                                      |\n\
   | 808 Maple St                         |\n\
   | $310000  - Seattle                   |\n\
   |                                      |\n\
   +--------------------------------------+\n\
   +--------------------------------------+\n\
   |                                      |\n\
   | 131 River Bend                       |\n\
   | $730000  - Kirkland                  |\n\
   |                                      |\n\
   +--------------------------------------+\n\
   +--------------------------------------+\n\
   |                                      |\n\
   | 100 Hill Crest                       |\n\
   | $220000  - Bellevue                  |\n\
   |                                      |\n\
   +--------------------------------------+\n"

let detail_page_header_golden =
  "\n\
  \ 808 Maple St, Seattle\n\
   \n\
   price: $310000\n\
   +------------++-----------+\n\
   |term: 360 mo|| apr: 4.50%|\n\
   +------------++-----------+\n\
   monthly payment: $1570.72\n\
   year 1   balance: $304998\n"

let detail_page_tail_golden =
  "year 29  balance: $18397\nyear 30  balance: $0\n"

let app () = live_of ~width:40 (Live_workloads.Mortgage.source ~listings:3 ())

let test_start_page () =
  Alcotest.(check string) "Fig. 1 left, byte for byte" start_page_golden
    (Live_session.screenshot (app ()))

let test_detail_page () =
  let ls = app () in
  (match Live_session.tap ls ~x:3 ~y:4 with
  | Ok Session.Tapped -> ()
  | _ -> Alcotest.fail "tap failed");
  let shot = Live_session.screenshot ls in
  let head = String.sub shot 0 (String.length detail_page_header_golden) in
  Alcotest.(check string) "detail page head" detail_page_header_golden head;
  let tail =
    String.sub shot
      (String.length shot - String.length detail_page_tail_golden)
      (String.length detail_page_tail_golden)
  in
  Alcotest.(check string) "detail page tail" detail_page_tail_golden tail

let test_stability_across_roundtrip () =
  (* navigating away and back reproduces the golden screen exactly *)
  let ls = app () in
  ignore (Live_session.tap ls ~x:3 ~y:4);
  ignore (Live_session.back ls);
  Alcotest.(check string) "identical after back" start_page_golden
    (Live_session.screenshot ls);
  (* and so does a no-op live edit *)
  match Live_session.edit ls (Live_workloads.Mortgage.source ~listings:3 ()) with
  | Ok o ->
      Alcotest.(check string) "identical after no-op edit" start_page_golden
        o.Live_session.screenshot
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e)

let suite =
  [
    case "Fig. 1 left (full frame)" test_start_page;
    case "Fig. 1 right (head and tail)" test_detail_page;
    case "goldens stable across navigation and no-op edits"
      test_stability_across_roundtrip;
  ]
