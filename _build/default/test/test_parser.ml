(** The surface parser: precedence, statement forms, declarations,
    error reporting. *)

open Live_surface

let parse_e src = Parser.parse_expr_string src

(** Compare expressions structurally, ignoring locations and node ids. *)
let rec same_expr (a : Sast.expr) (b : Sast.expr) : bool =
  match (a.desc, b.desc) with
  | Sast.Num x, Sast.Num y -> Float.equal x y
  | Sast.Str x, Sast.Str y -> String.equal x y
  | Sast.Bool x, Sast.Bool y -> x = y
  | Sast.Ref x, Sast.Ref y -> String.equal x y
  | Sast.TupleE xs, Sast.TupleE ys | Sast.ListE xs, Sast.ListE ys ->
      List.length xs = List.length ys && List.for_all2 same_expr xs ys
  | Sast.ProjE (x, n), Sast.ProjE (y, m) -> n = m && same_expr x y
  | Sast.Call (f, xs), Sast.Call (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 same_expr xs ys
  | Sast.Binop (o1, a1, b1), Sast.Binop (o2, a2, b2) ->
      o1 = o2 && same_expr a1 a2 && same_expr b1 b2
  | Sast.Unop (o1, a1), Sast.Unop (o2, a2) -> o1 = o2 && same_expr a1 a2
  | _ -> false

let check_same src1 src2 =
  Alcotest.(check bool)
    (Fmt.str "%s == %s" src1 src2)
    true
    (same_expr (parse_e src1) (parse_e src2))

let check_differ src1 src2 =
  Alcotest.(check bool)
    (Fmt.str "%s != %s" src1 src2)
    false
    (same_expr (parse_e src1) (parse_e src2))

let test_precedence () =
  check_same "1 + 2 * 3" "1 + (2 * 3)";
  check_differ "1 + 2 * 3" "(1 + 2) * 3";
  check_same "1 - 2 - 3" "(1 - 2) - 3";
  (* left assoc *)
  check_same "a ++ b ++ c" "a ++ (b ++ c)";
  check_same "1 + 2 == 3" "(1 + 2) == 3";
  check_same "not a == b" "not (a == b)";
  check_same "a and b or c" "(a and b) or c";
  check_same "not a and b" "(not a) and b";
  check_same "-x * y" "(-x) * y";
  check_same "a ++ b == c ++ d" "(a ++ b) == (c ++ d)";
  check_same "1 + 2 ++ x" "(1 + 2) ++ x"

let test_atoms () =
  check_same "(1)" "1";
  check_same "((x))" "x";
  check_differ "(1, 2)" "1";
  check_same "f(1, 2).1" "(f(1, 2)).1";
  (* caveat: ".1.2" lexes as the number 1.2, so chained projection
     needs parentheses — (x.1).2 *)
  (match Parser.parse_expr_string "x.1.2" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "x.1.2 should require parentheses");
  check_same "(x.1).2" "(x.1).2"

let test_tuple_and_list () =
  (match (parse_e "()").desc with
  | Sast.TupleE [] -> ()
  | _ -> Alcotest.fail "unit literal");
  (match (parse_e "(1, 2, 3)").desc with
  | Sast.TupleE [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "triple");
  (match (parse_e "[]").desc with
  | Sast.ListE [] -> ()
  | _ -> Alcotest.fail "empty list");
  match (parse_e "[1, 2]").desc with
  | Sast.ListE [ _; _ ] -> ()
  | _ -> Alcotest.fail "list of two"

let parse_p src = Parser.parse_program src

let test_program_decls () =
  let p =
    parse_p
      {|global g : number = 1
        fun f(x : number) : number { return x }
        page start() init { } render { }|}
  in
  Alcotest.(check (list string))
    "decl names" [ "g"; "f"; "start" ]
    (List.map Sast.decl_name p.Sast.decls)

let test_statement_forms () =
  let p =
    parse_p
      {|page start()
        init {
          var x := 1
          x := x + 1
          g_write()
          pop
        }
        render {
          boxed {
            box.margin := 2
            post "hi"
            on tapped { pop }
          }
          if 1 { post "a" } else if 0 { post "b" } else { post "c" }
          while 0 { post "w" }
          foreach y in [1] { post y }
          for i from 0 to 3 { post i }
          push start()
        }
        fun g_write() { }|}
  in
  let count = Sast.fold_stmts (fun n _ -> n + 1) 0 p in
  Alcotest.(check bool) "parsed many statements" true (count >= 15)

let test_srcids_unique () =
  let p = parse_p (Live_workloads.Mortgage.source ()) in
  let ids = Sast.fold_stmts (fun acc s -> s.Sast.sid :: acc) [] p in
  let sorted = List.sort_uniq Int.compare ids in
  Alcotest.(check int) "unique" (List.length ids) (List.length sorted)

let test_reparse_stable_ids () =
  (* identical source yields identical statement ids — what keeps the
     box ↔ code map stable across no-op recompiles *)
  let src = Live_workloads.Todo.source in
  let ids p = Sast.fold_stmts (fun acc s -> s.Sast.sid :: acc) [] p in
  Alcotest.(check (list int))
    "stable" (ids (parse_p src)) (ids (parse_p src))

let expect_error src =
  match Parser.parse_program src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected a parse error on %S" src

let test_errors () =
  expect_error "page start() init { render { }";
  (* missing brace *)
  expect_error "global g = 1";
  (* missing type *)
  expect_error "fun f( { }";
  expect_error "page start() render { }";
  (* missing init *)
  expect_error "page start() init { } render { post }";
  expect_error "xyzzy";
  expect_error "page start() init { } render { box margin := 1 }"

let test_error_location () =
  match Parser.parse_program "page start()\ninit { }\nrender { post }" with
  | exception Parser.Error (_, loc) ->
      Alcotest.(check int) "line" 3 loc.Loc.start.Loc.line
  | _ -> Alcotest.fail "expected error"

let suite =
  [
    Helpers.case "operator precedence" test_precedence;
    Helpers.case "atoms and grouping" test_atoms;
    Helpers.case "tuples and lists" test_tuple_and_list;
    Helpers.case "declarations" test_program_decls;
    Helpers.case "statement forms" test_statement_forms;
    Helpers.case "statement ids are unique" test_srcids_unique;
    Helpers.case "re-parsing is id-stable" test_reparse_stable_ids;
    Helpers.case "parse errors" test_errors;
    Helpers.case "errors carry locations" test_error_location;
  ]
