(** The effect lattice (Fig. 6's [mu] with the order induced by T-SUB):
    [Pure] below [State] and [Render], which are incomparable. *)

open Live_core

let all = [ Eff.Pure; Eff.State; Eff.Render ]

let gen_eff = QCheck2.Gen.oneofl all

let test_sub_table () =
  let expect a b v =
    Alcotest.(check bool)
      (Fmt.str "%a <= %a" Eff.pp a Eff.pp b)
      v (Eff.sub a b)
  in
  expect Eff.Pure Eff.Pure true;
  expect Eff.Pure Eff.State true;
  expect Eff.Pure Eff.Render true;
  expect Eff.State Eff.State true;
  expect Eff.Render Eff.Render true;
  expect Eff.State Eff.Pure false;
  expect Eff.Render Eff.Pure false;
  expect Eff.State Eff.Render false;
  expect Eff.Render Eff.State false

let test_join_table () =
  let some = Alcotest.(check (option Helpers.eff)) in
  some "p v p" (Some Eff.Pure) (Eff.join Eff.Pure Eff.Pure);
  some "p v s" (Some Eff.State) (Eff.join Eff.Pure Eff.State);
  some "r v p" (Some Eff.Render) (Eff.join Eff.Render Eff.Pure);
  some "s v s" (Some Eff.State) (Eff.join Eff.State Eff.State);
  some "r v r" (Some Eff.Render) (Eff.join Eff.Render Eff.Render);
  some "s v r" None (Eff.join Eff.State Eff.Render);
  some "r v s" None (Eff.join Eff.Render Eff.State)

(* lattice laws *)
let prop_sub_reflexive =
  Helpers.qcheck "sub reflexive" gen_eff (fun a -> Eff.sub a a)

let prop_sub_antisymmetric =
  Helpers.qcheck "sub antisymmetric"
    QCheck2.Gen.(pair gen_eff gen_eff)
    (fun (a, b) -> (not (Eff.sub a b && Eff.sub b a)) || Eff.equal a b)

let prop_sub_transitive =
  Helpers.qcheck "sub transitive"
    QCheck2.Gen.(triple gen_eff gen_eff gen_eff)
    (fun (a, b, c) -> (not (Eff.sub a b && Eff.sub b c)) || Eff.sub a c)

let prop_join_commutative =
  Helpers.qcheck "join commutative"
    QCheck2.Gen.(pair gen_eff gen_eff)
    (fun (a, b) -> Eff.join a b = Eff.join b a)

let prop_join_is_lub =
  Helpers.qcheck "join is the least upper bound"
    QCheck2.Gen.(triple gen_eff gen_eff gen_eff)
    (fun (a, b, c) ->
      match Eff.join a b with
      | Some j ->
          Eff.sub a j && Eff.sub b j
          && ((not (Eff.sub a c && Eff.sub b c)) || Eff.sub j c)
      | None ->
          (* no upper bound exists at all *)
          not (List.exists (fun u -> Eff.sub a u && Eff.sub b u) all))

let suite =
  [
    Helpers.case "sub: full table" test_sub_table;
    Helpers.case "join: full table" test_join_table;
    prop_sub_reflexive;
    prop_sub_antisymmetric;
    prop_sub_transitive;
    prop_join_commutative;
    prop_join_is_lub;
  ]
