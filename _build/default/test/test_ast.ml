(** Values, expressions (Fig. 6) and capture-avoiding substitution
    (the engine of EP-APP). *)

open Live_core
open Helpers

let test_as_value () =
  Alcotest.(check bool) "literal" true (Ast.is_value (num 1.0));
  Alcotest.(check bool)
    "tuple of values" true
    (Ast.is_value (Ast.Tuple [ num 1.0; str "x" ]));
  Alcotest.(check bool)
    "tuple with redex" false
    (Ast.is_value (Ast.Tuple [ num 1.0; add (num 1.0) (num 2.0) ]));
  Alcotest.(check bool) "lambda" true (Ast.is_value (lam "x" Typ.Num (Ast.Var "x")));
  Alcotest.(check bool) "variable" false (Ast.is_value (Ast.Var "x"));
  Alcotest.(check bool) "application" false
    (Ast.is_value (Ast.App (lam "x" Typ.Num (Ast.Var "x"), num 1.0)));
  (* a tuple expression of values classifies as the tuple value *)
  Alcotest.(check (option value))
    "tuple collapses"
    (Some (Ast.VTuple [ vnum 1.0; vstr "x" ]))
    (Ast.as_value (Ast.Tuple [ num 1.0; str "x" ]))

let test_truthy () =
  Alcotest.(check bool) "0 falsy" false (Ast.truthy (vnum 0.0));
  Alcotest.(check bool) "1 truthy" true (Ast.truthy (vnum 1.0));
  Alcotest.(check bool) "-2 truthy" true (Ast.truthy (vnum (-2.0)));
  Alcotest.(check bool) "string falsy" false (Ast.truthy (vstr "yes"))

let test_free_vars () =
  let fv e = Ast.StringSet.elements (Ast.free_vars e) in
  Alcotest.(check (list string)) "var" [ "x" ] (fv (Ast.Var "x"));
  Alcotest.(check (list string))
    "lambda binds" []
    (fv (lam "x" Typ.Num (Ast.Var "x")));
  Alcotest.(check (list string))
    "free under lambda" [ "y" ]
    (fv (lam "x" Typ.Num (add (Ast.Var "x") (Ast.Var "y"))));
  Alcotest.(check (list string))
    "globals are not variables" []
    (fv (Ast.Get "g"));
  Alcotest.(check (list string))
    "handler capture" [ "z" ]
    (fv (Ast.SetAttr ("ontap", lam "_" Typ.unit_ (Ast.Set ("g", Ast.Var "z")))))

let test_subst_simple () =
  let e = add (Ast.Var "x") (num 1.0) in
  Alcotest.check expr "x := 2 in x+1"
    (add (num 2.0) (num 1.0))
    (Subst.subst_expr "x" (vnum 2.0) e)

let test_subst_shadowing () =
  (* (\x. x) with outer substitution for x must not touch the bound x *)
  let inner = lam "x" Typ.Num (Ast.Var "x") in
  Alcotest.check expr "bound occurrence untouched" inner
    (Subst.subst_expr "x" (vnum 5.0) inner)

let test_subst_inside_values () =
  (* substitution descends into lambda values (handler capture) *)
  let handler = lam "_" Typ.unit_ (Ast.Set ("g", Ast.Var "y")) in
  let expected = lam "_" Typ.unit_ (Ast.Set ("g", num 7.0)) in
  Alcotest.check expr "captured by value" expected
    (Subst.subst_expr "y" (vnum 7.0) handler)

let test_subst_capture_avoidance () =
  (* substituting a value that mentions variable y into \y.(x, y):
     the bound y must be renamed, not capture the free y *)
  let v = Ast.VLam ("z", Typ.Num, add (Ast.Var "z") (Ast.Var "y")) in
  let target = lam "y" Typ.Num (Ast.Tuple [ Ast.Var "x"; Ast.Var "y" ]) in
  let result = Subst.subst_expr "x" v target in
  (* the result must still be a lambda whose bound variable differs
     from y, and the free y of v must remain free *)
  match result with
  | Ast.Val (Ast.VLam (y', _, body)) ->
      Alcotest.(check bool) "renamed" true (y' <> "y");
      let fv = Ast.free_vars body in
      Alcotest.(check bool) "v's y stays free" true
        (Ast.StringSet.mem "y" fv)
  | _ -> Alcotest.fail "substitution destroyed the lambda"

let test_beta () =
  let body = add (Ast.Var "x") (Ast.Var "x") in
  Alcotest.check expr "beta" (add (num 3.0) (num 3.0))
    (Subst.beta "x" body (vnum 3.0))

let test_closed () =
  Alcotest.(check bool) "closed" true (Ast.closed_expr (num 1.0));
  Alcotest.(check bool) "open" false (Ast.closed_expr (Ast.Var "x"));
  Alcotest.(check bool)
    "lambda closed" true
    (Ast.closed_expr (lam "x" Typ.Num (Ast.Var "x")))

let test_size () =
  Alcotest.(check bool) "size grows" true
    (Ast.size_expr (add (num 1.0) (num 2.0)) > Ast.size_expr (num 1.0))

(* substitution for a variable not free is the identity *)
let prop_subst_not_free =
  Helpers.qcheck "subst of non-free var is identity"
    QCheck2.Gen.(pure ())
    (fun () ->
      let e =
        Ast.App
          ( lam "x" Typ.Num (add (Ast.Var "x") (num 1.0)),
            Ast.Get "g" )
      in
      Ast.equal_expr e (Subst.subst_expr "zzz" (vnum 9.0) e))

let suite =
  [
    case "value classification" test_as_value;
    case "truthiness" test_truthy;
    case "free variables" test_free_vars;
    case "substitution: simple" test_subst_simple;
    case "substitution: shadowing" test_subst_shadowing;
    case "substitution: inside lambda values" test_subst_inside_values;
    case "substitution: capture avoidance" test_subst_capture_avoidance;
    case "beta reduction" test_beta;
    case "closedness" test_closed;
    case "sizes" test_size;
    prop_subst_not_free;
  ]
