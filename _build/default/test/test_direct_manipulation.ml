(** Direct manipulation details: upsert semantics, validation, value
    kinds. *)

open Live_runtime
open Helpers

let simple_src =
  {|page start()
init { }
render {
  boxed {
    box.margin := 2
    post "target"
  }
}
|}

(** Select the box showing "target", wherever the current styling put
    it. *)
let select_target ls =
  let lines = String.split_on_char '\n' (Live_session.screenshot ls) in
  let rec go y = function
    | [] -> Alcotest.fail "'target' not on screen"
    | l :: rest -> (
        if contains l "target" then
          match Live_session.select_box ls ~x:(String.length l - 1) ~y with
          | Some s -> s.Navigation.srcid
          | None -> Alcotest.fail "no box under 'target'"
        else go (y + 1) rest)
  in
  go 0 lines

let set ls srcid attr value =
  match Direct_manipulation.set_attribute ls ~srcid ~attr ~value with
  | Ok o -> o
  | Error e ->
      Alcotest.failf "set_attribute %s: %s" attr
        (Direct_manipulation.error_to_string e)

let test_updates_existing_attr_statement () =
  let ls = live_of ~width:20 simple_src in
  let id = select_target ls in
  ignore (set ls id "margin" "4");
  let src = Live_session.source ls in
  check_contains "value replaced" src "box.margin := 4";
  Alcotest.(check bool) "old value gone" false (contains src "box.margin := 2");
  (* exactly one margin statement: upsert, not append *)
  let count_occurrences s sub =
    let n = String.length s and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub s i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "single statement" 1
    (count_occurrences src "box.margin")

let test_inserts_missing_attr_statement () =
  let ls = live_of ~width:20 simple_src in
  let id = select_target ls in
  ignore (set ls id "background" "\"light blue\"");
  check_contains "inserted" (Live_session.source ls)
    {|box.background := "light blue"|}

let test_string_and_expression_values () =
  let ls = live_of ~width:20 simple_src in
  let id = select_target ls in
  (* expressions are allowed, not just literals *)
  ignore (set ls id "padding" "1 + 1");
  check_contains "expression kept" (Live_session.source ls)
    "box.padding := 1 + 1";
  match
    Direct_manipulation.get_attribute ls ~srcid:(select_target ls)
      ~attr:"padding"
  with
  | Some (Live_core.Ast.VNum 2.0) -> ()
  | _ -> Alcotest.fail "padding should evaluate to 2"

let test_rejects_bad_input () =
  let ls = live_of ~width:20 simple_src in
  let id = select_target ls in
  (match
     Direct_manipulation.set_attribute ls ~srcid:id ~attr:"nonsense"
       ~value:"1"
   with
  | Error (Direct_manipulation.Bad_attribute _) -> ()
  | _ -> Alcotest.fail "unknown attribute must be rejected");
  (match
     Direct_manipulation.set_attribute ls ~srcid:id ~attr:"ontap" ~value:"1"
   with
  | Error (Direct_manipulation.Bad_attribute _) -> ()
  | _ -> Alcotest.fail "handler attributes are not direct-manipulable");
  (match
     Direct_manipulation.set_attribute ls ~srcid:id ~attr:"margin"
       ~value:"][broken"
   with
  | Error (Direct_manipulation.Bad_attribute _) -> ()
  | _ -> Alcotest.fail "unparseable value must be rejected");
  (* a type-incorrect value fails the recompile and leaves the program
     untouched *)
  (match
     Direct_manipulation.set_attribute ls ~srcid:id ~attr:"margin"
       ~value:"\"wide\""
   with
  | Error (Direct_manipulation.Edit_failed _) -> ()
  | _ -> Alcotest.fail "ill-typed value must fail the edit");
  check_contains "program unchanged" (Live_session.source ls)
    "box.margin := 2";
  (* unknown srcid *)
  match
    Direct_manipulation.set_attribute ls ~srcid:(Live_core.Srcid.of_int 99999)
      ~attr:"margin" ~value:"1"
  with
  | Error Direct_manipulation.No_such_box -> ()
  | _ -> Alcotest.fail "unknown box id must be rejected"

let test_get_attribute_none_when_unset () =
  let ls = live_of ~width:20 simple_src in
  let id = select_target ls in
  Alcotest.(check bool) "unset attr reads None" true
    (Direct_manipulation.get_attribute ls ~srcid:id ~attr:"background" = None)

let suite =
  [
    case "upsert updates an existing statement" test_updates_existing_attr_statement;
    case "upsert inserts a missing statement" test_inserts_missing_attr_statement;
    case "expression values" test_string_and_expression_values;
    case "invalid edits rejected, program intact" test_rejects_bad_input;
    case "get_attribute on unset attributes" test_get_attribute_none_when_unset;
  ]
