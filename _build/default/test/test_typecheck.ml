(** The core type-and-effect system (Fig. 10): acceptance, rejection,
    and the least-effect discipline that implements T-SUB. *)

open Live_core
open Helpers

let prog =
  Program.of_defs
    [
      Program.Global { name = "g"; ty = Typ.Num; init = vnum 0.0 };
      Program.Global { name = "s"; ty = Typ.Str; init = vstr "" };
      Program.Func
        {
          name = "inc";
          ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
          body = lam "x" Typ.Num (add (Ast.Var "x") (num 1.0));
        };
      Program.Func
        {
          name = "bump";
          ty = Typ.Fn (Typ.unit_, Eff.State, Typ.unit_);
          body =
            lam "_" Typ.unit_ (Ast.Set ("g", add (Ast.Get "g") (num 1.0)));
        };
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ Ast.eunit;
          render = lam "_" Typ.unit_ Ast.eunit;
        };
      Program.Page
        {
          name = "detail";
          arg_ty = Typ.Num;
          init = lam "x" Typ.Num Ast.eunit;
          render = lam "x" Typ.Num (Ast.Post (Ast.Var "x"));
        };
    ]

let infer e =
  match Typecheck.infer prog Typecheck.empty_gamma e with
  | Ok a -> a
  | Error m -> Alcotest.failf "unexpected type error: %s" m

let reject ?(gamma = Typecheck.empty_gamma) name e =
  match Typecheck.infer prog gamma e with
  | Error _ -> ()
  | Ok a ->
      Alcotest.failf "%s: expected a type error, got %s / %s" name
        (Typ.to_string a.Typecheck.ty)
        (Eff.name a.Typecheck.eff)

let check_ty name e ty =
  Alcotest.check typ name ty (infer e).Typecheck.ty

let check_eff name e expected =
  Alcotest.check eff name expected (infer e).Typecheck.eff

let test_literals () =
  check_ty "T-INT" (num 1.0) Typ.Num;
  check_ty "T-STRING" (str "x") Typ.Str;
  check_ty "T-TUPLE" (Ast.Tuple [ num 1.0; str "x" ])
    (Typ.Tuple [ Typ.Num; Typ.Str ]);
  check_eff "values are pure" (str "x") Eff.Pure

let test_lambda_latent_effect () =
  (* T-LAM assigns the least effect of the body as the latent effect *)
  check_ty "pure body"
    (lam "x" Typ.Num (Ast.Var "x"))
    (Typ.Fn (Typ.Num, Eff.Pure, Typ.Num));
  check_ty "state body"
    (lam "_" Typ.unit_ (Ast.Set ("g", num 1.0)))
    (Typ.Fn (Typ.unit_, Eff.State, Typ.unit_));
  check_ty "render body"
    (lam "_" Typ.unit_ (Ast.Post (num 1.0)))
    (Typ.Fn (Typ.unit_, Eff.Render, Typ.unit_));
  (* the lambda itself is a value: pure whatever its body does *)
  check_eff "lambda is pure"
    (lam "_" Typ.unit_ (Ast.Set ("g", num 1.0)))
    Eff.Pure

let test_application_effects () =
  (* T-APP: the latent effect joins into the application *)
  check_eff "pure call" (Ast.App (Ast.Fn "inc", num 1.0)) Eff.Pure;
  check_eff "state call" (Ast.App (Ast.Fn "bump", Ast.eunit)) Eff.State;
  check_ty "call type" (Ast.App (Ast.Fn "inc", num 1.0)) Typ.Num;
  reject "argument mismatch" (Ast.App (Ast.Fn "inc", str "no"));
  reject "apply non-function" (Ast.App (num 1.0, num 2.0))

let test_t_sub () =
  (* a pure-latent function may be used where a state function is
     expected (T-SUB) *)
  let pure_fn = lam "x" Typ.Num (Ast.Var "x") in
  match
    Typecheck.check prog Typecheck.empty_gamma Eff.Pure pure_fn
      (Typ.Fn (Typ.Num, Eff.State, Typ.Num))
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_globals () =
  check_ty "T-GLOBAL" (Ast.Get "g") Typ.Num;
  check_eff "reads are pure" (Ast.Get "g") Eff.Pure;
  check_eff "T-ASSIGN is state" (Ast.Set ("g", num 1.0)) Eff.State;
  check_ty "assign yields unit" (Ast.Set ("g", num 1.0)) Typ.unit_;
  reject "assign wrong type" (Ast.Set ("g", str "no"));
  reject "assign unknown global" (Ast.Set ("nope", num 1.0));
  reject "read unknown global" (Ast.Get "nope")

let test_pages () =
  check_eff "T-PUSH is state" (Ast.Push ("detail", num 1.0)) Eff.State;
  check_eff "T-POP is state" Ast.Pop Eff.State;
  reject "push wrong argument" (Ast.Push ("detail", str "no"));
  reject "push unknown page" (Ast.Push ("nope", num 1.0))

let test_render_constructs () =
  check_eff "T-BOXED" (Ast.Boxed (None, num 1.0)) Eff.Render;
  check_ty "boxed keeps the type" (Ast.Boxed (None, num 1.0)) Typ.Num;
  check_eff "T-POST" (Ast.Post (num 1.0)) Eff.Render;
  check_eff "T-ATTR" (Ast.SetAttr ("margin", num 1.0)) Eff.Render;
  reject "unknown attribute" (Ast.SetAttr ("nope", num 1.0));
  reject "attribute type mismatch" (Ast.SetAttr ("margin", str "wide"));
  (* Gamma_a: ontap takes a state handler *)
  (match
     Typecheck.infer prog Typecheck.empty_gamma
       (Ast.SetAttr
          ("ontap", lam "_" Typ.unit_ (Ast.Set ("g", num 1.0))))
   with
  | Ok a -> Alcotest.check eff "handler install is render" Eff.Render a.Typecheck.eff
  | Error m -> Alcotest.fail m);
  reject "render handler rejected"
    (Ast.SetAttr ("ontap", lam "_" Typ.unit_ (Ast.Post (num 1.0))))

let test_separation () =
  (* the heart of the paper: no expression may both write the model
     and build the view *)
  reject "set then post"
    (Ast.App
       ( lam "_" Typ.unit_ (Ast.Post (num 1.0)),
         Ast.Set ("g", num 1.0) ));
  reject "boxed around set" (Ast.Boxed (None, Ast.Set ("g", num 1.0)));
  reject "push inside render"
    (Ast.Boxed (None, Ast.Push ("detail", num 1.0)))

let test_projection () =
  check_ty "T-PROJ" (Ast.Proj (Ast.Tuple [ num 1.0; str "x" ], 2)) Typ.Str;
  reject "out of range" (Ast.Proj (Ast.Tuple [ num 1.0 ], 2));
  reject "project non-tuple" (Ast.Proj (num 1.0, 1))

let test_vars () =
  let gamma = [ ("x", Typ.Num) ] in
  (match Typecheck.infer prog gamma (Ast.Var "x") with
  | Ok a -> Alcotest.check typ "T-VAR" Typ.Num a.Typecheck.ty
  | Error m -> Alcotest.fail m);
  reject "unbound variable" (Ast.Var "x")

let test_check_value () =
  Alcotest.(check bool) "number" true (Typecheck.check_value prog (vnum 1.0) Typ.Num);
  Alcotest.(check bool) "mismatch" false
    (Typecheck.check_value prog (vnum 1.0) Typ.Str);
  Alcotest.(check bool) "list" true
    (Typecheck.check_value prog
       (Ast.VList (Typ.Num, [ vnum 1.0; vnum 2.0 ]))
       (Typ.List Typ.Num));
  Alcotest.(check bool) "bad element" false
    (Typecheck.check_value prog
       (Ast.VList (Typ.Num, [ vstr "x" ]))
       (Typ.List Typ.Num));
  Alcotest.(check bool) "handler value" true
    (Typecheck.check_value prog
       (Ast.VLam ("_", Typ.unit_, Ast.Set ("g", num 1.0)))
       Typ.handler)

let suite =
  [
    case "literals and tuples" test_literals;
    case "T-LAM: least latent effect" test_lambda_latent_effect;
    case "T-APP and latent effects" test_application_effects;
    case "T-SUB" test_t_sub;
    case "globals (T-GLOBAL / T-ASSIGN)" test_globals;
    case "pages (T-PUSH / T-POP)" test_pages;
    case "render constructs (T-BOXED / T-POST / T-ATTR)" test_render_constructs;
    case "model-view separation has no join" test_separation;
    case "projection (T-PROJ)" test_projection;
    case "variables (T-VAR)" test_vars;
    case "value checking" test_check_value;
  ]
