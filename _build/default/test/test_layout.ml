(** The layout engine: wrapping, stacking, chrome (margin, padding,
    border), shrink-vs-stretch sizing, hit-testing, and the layout
    cache. *)

open Live_core
open Live_ui
open Helpers

let leaf s = Boxcontent.Leaf (Ast.VStr s)
let attr a v = Boxcontent.Attr (a, v)
let nattr a f = attr a (Ast.VNum f)
let sattr a s = attr a (Ast.VStr s)
let box ?id items = Boxcontent.Box (Option.map Srcid.of_int id, items)

let test_wrap_text () =
  Alcotest.(check (list string)) "fits verbatim" [ "  a b" ]
    (Layout.wrap_text 10 "  a b");
  Alcotest.(check (list string)) "wraps at spaces" [ "aa bb"; "cc" ]
    (Layout.wrap_text 5 "aa bb cc");
  Alcotest.(check (list string)) "hard-breaks long words" [ "abcde"; "fg" ]
    (Layout.wrap_text 5 "abcdefg");
  Alcotest.(check (list string)) "explicit newlines" [ "a"; "b" ]
    (Layout.wrap_text 10 "a\nb");
  Alcotest.(check (list string)) "empty" [ "" ] (Layout.wrap_text 5 "")

let test_vertical_stacking () =
  let root = Layout.layout_page ~width:10 [ box [ leaf "a" ]; box [ leaf "b" ] ] in
  match root.Layout.items with
  | [ Layout.Child c1; Layout.Child c2 ] ->
      Alcotest.(check int) "first at top" 0 c1.Layout.outer.Geometry.y;
      Alcotest.(check int) "second below" 1 c2.Layout.outer.Geometry.y;
      (* vertical children stretch *)
      Alcotest.(check int) "stretch" 10 c1.Layout.frame.Geometry.w
  | _ -> Alcotest.fail "expected two children"

let test_horizontal_shrink () =
  let root =
    Layout.layout_page ~width:20
      [
        box
          [
            sattr "direction" "horizontal";
            box [ leaf "ab" ];
            box [ leaf "cdef" ];
          ];
      ]
  in
  match root.Layout.items with
  | [ Layout.Child row ] -> (
      match row.Layout.items with
      | [ Layout.Child a; Layout.Child b ] ->
          Alcotest.(check int) "shrink to text" 2 a.Layout.frame.Geometry.w;
          Alcotest.(check int) "next starts after" 2 b.Layout.frame.Geometry.x;
          Alcotest.(check int) "second width" 4 b.Layout.frame.Geometry.w
      | _ -> Alcotest.fail "expected two row children")
  | _ -> Alcotest.fail "expected the row"

let test_chrome_geometry () =
  let root =
    Layout.layout_page ~width:20
      [ box [ nattr "margin" 2.0; nattr "padding" 1.0; nattr "border" 1.0; leaf "x" ] ]
  in
  match root.Layout.items with
  | [ Layout.Child c ] ->
      Alcotest.check rect "outer includes margin"
        (Geometry.make ~x:0 ~y:0 ~w:20 ~h:9)
        c.Layout.outer;
      Alcotest.check rect "frame inset by margin"
        (Geometry.make ~x:2 ~y:2 ~w:16 ~h:5)
        c.Layout.frame;
      Alcotest.check rect "inner inset by border+padding"
        (Geometry.make ~x:4 ~y:4 ~w:12 ~h:1)
        c.Layout.inner
  | _ -> Alcotest.fail "expected one child"

let test_fixed_width_height () =
  let root =
    Layout.layout_page ~width:30
      [ box [ nattr "width" 10.0; nattr "height" 3.0; leaf "x" ] ]
  in
  match root.Layout.items with
  | [ Layout.Child c ] ->
      Alcotest.(check int) "fixed width" 10 c.Layout.frame.Geometry.w;
      Alcotest.(check int) "fixed height" 3 c.Layout.frame.Geometry.h
  | _ -> Alcotest.fail "expected one child"

let test_fontsize_height () =
  let root =
    Layout.layout_page ~width:30 [ box [ nattr "fontsize" 2.0; leaf "t" ] ]
  in
  match root.Layout.items with
  | [ Layout.Child c ] ->
      Alcotest.(check int) "doubled line height" 2 c.Layout.frame.Geometry.h
  | _ -> Alcotest.fail "expected one child"

let test_text_wrap_in_narrow_box () =
  let root = Layout.layout_page ~width:6 [ box [ leaf "aa bb cc" ] ] in
  match root.Layout.items with
  | [ Layout.Child c ] ->
      Alcotest.(check int) "two lines" 2 c.Layout.frame.Geometry.h
  | _ -> Alcotest.fail "expected one child"

let handler = Ast.VLam ("_", Typ.unit_, Ast.eunit)

let tree_with_handlers =
  [
    box ~id:1 [ leaf "top"; attr "ontap" handler ];
    box ~id:2
      [
        leaf "outer";
        box ~id:3 [ leaf "inner"; attr "ontap" handler ];
      ];
  ]

let test_hit_testing () =
  let root = Layout.layout_page ~width:10 tree_with_handlers in
  (* y=0: first box (leaf "top") *)
  Alcotest.(check (option int)) "top box"
    (Some 1)
    (Option.map Srcid.to_int (Layout.srcid_at root ~x:1 ~y:0));
  (* y=2: the nested inner box *)
  Alcotest.(check (option int)) "deepest srcid wins"
    (Some 3)
    (Option.map Srcid.to_int (Layout.srcid_at root ~x:1 ~y:2));
  (* handler lookup at the inner box *)
  Alcotest.(check bool) "handler found" true
    (Option.is_some (Layout.handler_at root ~x:1 ~y:2));
  (* outside everything *)
  Alcotest.(check bool) "miss" true (Layout.srcid_at root ~x:1 ~y:99 = None)

let test_nodes_at_order () =
  let root = Layout.layout_page ~width:10 tree_with_handlers in
  let chain = Layout.nodes_at root ~x:1 ~y:2 in
  let ids =
    List.filter_map (fun (n : Layout.node) -> Option.map Srcid.to_int n.Layout.srcid) chain
  in
  Alcotest.(check (list int)) "outermost first" [ 2; 3 ] ids

let test_frames_of_srcid () =
  (* a boxed statement in a loop yields several frames *)
  let tree = [ box ~id:9 [ leaf "a" ]; box ~id:9 [ leaf "b" ]; box ~id:9 [ leaf "c" ] ] in
  let root = Layout.layout_page ~width:10 tree in
  let frames = Layout.frames_of_srcid root (Srcid.of_int 9) in
  Alcotest.(check int) "all three" 3 (List.length frames);
  Alcotest.(check (list int)) "stacked"
    [ 0; 1; 2 ]
    (List.map (fun (r : Geometry.rect) -> r.Geometry.y) frames)

let test_bpaths () =
  let root = Layout.layout_page ~width:10 tree_with_handlers in
  match root.Layout.items with
  | [ Layout.Child a; Layout.Child b ] -> (
      Alcotest.(check (list int)) "first" [ 0 ] a.Layout.bpath;
      Alcotest.(check (list int)) "second" [ 1 ] b.Layout.bpath;
      match
        List.filter_map
          (function Layout.Child c -> Some c | _ -> None)
          b.Layout.items
      with
      | [ inner ] ->
          Alcotest.(check (list int)) "nested" [ 1; 0 ] inner.Layout.bpath
      | _ -> Alcotest.fail "expected nested child")
  | _ -> Alcotest.fail "expected two children"

let test_cache_equivalence () =
  (* layout with and without the cache is identical *)
  let tree =
    List.init 20 (fun i ->
        box ~id:(i mod 3) [ leaf (Printf.sprintf "row %d" (i mod 5)) ])
  in
  let plain = Layout.layout_page ~width:20 tree in
  let cache = Layout.create_cache () in
  let cached = Layout.layout_page ~cache ~width:20 tree in
  let rects n = Layout.fold_nodes (fun acc (m : Layout.node) -> m.Layout.frame :: acc) [] n in
  Alcotest.(check (list rect)) "same frames" (rects plain) (rects cached);
  (* repeated rows hit the cache *)
  let hits, misses = Layout.cache_stats cache in
  Alcotest.(check bool) "cache was useful" true (hits > 0);
  Alcotest.(check bool) "some misses" true (misses > 0);
  (* a second layout of the same content is almost all hits *)
  let _ = Layout.layout_page ~cache ~width:20 tree in
  let hits2, misses2 = Layout.cache_stats cache in
  Alcotest.(check bool) "second pass hits" true (hits2 > hits);
  Alcotest.(check int) "no new misses" misses2 misses

let test_count_nodes () =
  let root = Layout.layout_page ~width:10 tree_with_handlers in
  Alcotest.(check int) "boxes + root" 4 (Layout.count_nodes root)

let suite =
  [
    case "wrap_text" test_wrap_text;
    case "vertical stacking stretches" test_vertical_stacking;
    case "horizontal stacking shrinks" test_horizontal_shrink;
    case "margin/padding/border geometry" test_chrome_geometry;
    case "fixed width and height" test_fixed_width_height;
    case "fontsize scales line height" test_fontsize_height;
    case "narrow boxes wrap text" test_text_wrap_in_narrow_box;
    case "hit-testing" test_hit_testing;
    case "nodes_at is outermost-first" test_nodes_at_order;
    case "frames_of_srcid finds loop instances" test_frames_of_srcid;
    case "box paths" test_bpaths;
    case "cache is transparent and effective" test_cache_equivalence;
    case "node counting" test_count_nodes;
  ]
