(** UI-Code Navigation (Sec. 3, Fig. 2): the bidirectional box ↔
    boxed-statement mapping. *)

open Live_runtime
open Helpers

let nav_src =
  {|page start()
init { }
render {
  boxed {
    post "header"
  }
  foreach i in [1, 2, 3] {
    boxed {
      post "row " ++ str(i)
    }
  }
}
|}

let test_live_view_to_code () =
  let ls = live_of ~width:20 nav_src in
  (* tapping the header selects its boxed statement... *)
  match Live_session.select_box ls ~x:1 ~y:0 with
  | None -> Alcotest.fail "no selection on the header"
  | Some sel ->
      check_contains "statement text" sel.Navigation.text "post \"header\"";
      (* ...and the span points into the source *)
      let span_text =
        Live_surface.Loc.extract (Live_session.source ls) sel.Navigation.span
      in
      check_contains "span covers the boxed keyword" span_text "boxed"

let test_code_to_live_view_loop () =
  (* "a selected boxed statement appearing inside a loop corresponds to
     multiple boxes in the display, which are collectively selected" *)
  let ls = live_of ~width:20 nav_src in
  match Live_session.select_box ls ~x:1 ~y:1 with
  | None -> Alcotest.fail "no selection on a row"
  | Some sel ->
      let frames = Live_session.frames_of_stmt ls sel.Navigation.srcid in
      Alcotest.(check int) "three boxes selected" 3 (List.length frames);
      (* collectively selected: one frame per loop iteration, stacked *)
      let ys =
        List.map (fun (r : Live_ui.Geometry.rect) -> r.Live_ui.Geometry.y) frames
      in
      Alcotest.(check (list int)) "stacked rows" [ 1; 2; 3 ] ys

let test_round_trip () =
  (* box -> statement -> boxes: the original box is among the frames *)
  let ls = live_of ~width:20 nav_src in
  match Live_session.select_box ls ~x:1 ~y:2 with
  | None -> Alcotest.fail "no selection"
  | Some sel ->
      let frames = Live_session.frames_of_stmt ls sel.Navigation.srcid in
      Alcotest.(check bool) "tapped point inside some selected frame" true
        (List.exists
           (fun r -> Live_ui.Geometry.contains r ~x:1 ~y:2)
           frames)

let nested_src =
  {|page start()
init { }
render {
  boxed {
    post "outer"
    boxed {
      post "inner"
    }
  }
}
|}

let test_nested_selection_mode () =
  (* Sec. 5: "the user can tap the same box multiple times to select
     enclosing boxes" — enclosing_at exposes the chain *)
  let ls = live_of ~width:20 nested_src in
  let chain = Live_session.enclosing_boxes ls ~x:1 ~y:1 in
  Alcotest.(check int) "two enclosing boxed statements" 2 (List.length chain);
  (match chain with
  | inner :: outer :: _ ->
      check_contains "innermost first" inner.Navigation.text "inner";
      check_contains "then the outer" outer.Navigation.text "outer"
  | _ -> Alcotest.fail "expected a chain")

let test_selection_survives_recompile_of_same_source () =
  (* node ids are stable across re-parses of identical source *)
  let ls = live_of ~width:20 nav_src in
  let before = Live_session.select_box ls ~x:1 ~y:0 in
  (match Live_session.edit ls nav_src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "no-op edit failed: %s" (Live_session.error_to_string e));
  let after = Live_session.select_box ls ~x:1 ~y:0 in
  match (before, after) with
  | Some a, Some b ->
      Alcotest.(check int) "same srcid"
        (Live_core.Srcid.to_int a.Navigation.srcid)
        (Live_core.Srcid.to_int b.Navigation.srcid)
  | _ -> Alcotest.fail "selection lost"

let test_visible_srcids () =
  let ls = live_of ~width:20 nav_src in
  let ids = Navigation.visible_srcids (Live_session.session ls) in
  (* header box + 3 instances of the loop box (same id) *)
  Alcotest.(check int) "four boxes" 4 (List.length ids);
  Alcotest.(check int) "two distinct statements" 2
    (List.length (List.sort_uniq Live_core.Srcid.compare ids))

let suite =
  [
    case "live view -> code" test_live_view_to_code;
    case "code -> live view (loop multi-selection)" test_code_to_live_view_loop;
    case "round trip" test_round_trip;
    case "nested selection mode" test_nested_selection_mode;
    case "selection stable across identical recompiles"
      test_selection_survives_recompile_of_same_source;
    case "visible srcids" test_visible_srcids;
  ]
