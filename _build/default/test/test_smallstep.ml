(** The literal small-step machine of Fig. 8, and its agreement with
    the big-step evaluator used by the runtime.  The small-step
    relation is the executable specification; the big-step evaluator
    is the implementation — random expressions must agree. *)

open Live_core
open Helpers

let prog_g =
  Program.of_defs
    [
      Program.Global { name = "g"; ty = Typ.Num; init = vnum 10.0 };
      Program.Func
        {
          name = "inc";
          ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
          body = lam "x" Typ.Num (add (Ast.Var "x") (num 1.0));
        };
    ]

let run_small mode ?(store = Store.empty) e =
  Eval.run_small mode prog_g
    { Eval.store; queue = Fqueue.empty; box = [] }
    e

let test_single_steps () =
  (* one EP-APP step, literally *)
  let e = Ast.App (lam "x" Typ.Num (Ast.Var "x"), num 3.0) in
  match Eval.step_pure prog_g Store.empty e with
  | Eval.Next (_, e') -> Alcotest.check expr "stepped to body" (num 3.0) e'
  | _ -> Alcotest.fail "expected a step"

let test_leftmost_order () =
  (* evaluation contexts evaluate tuples left to right: the first
     non-value is reduced first *)
  let e =
    Ast.Tuple [ num 1.0; add (num 1.0) (num 1.0); add (num 2.0) (num 2.0) ]
  in
  match Eval.step_pure prog_g Store.empty e with
  | Eval.Next (_, Ast.Tuple [ a; b; c ]) ->
      Alcotest.check expr "first stays" (num 1.0) a;
      Alcotest.check expr "second reduced" (num 2.0) b;
      Alcotest.check expr "third untouched" (add (num 2.0) (num 2.0)) c
  | _ -> Alcotest.fail "expected a tuple step"

let test_app_function_first () =
  (* E e then v E: the function position reduces before the argument *)
  let e =
    Ast.App (Ast.Fn "inc", add (num 1.0) (num 1.0))
  in
  match Eval.step_pure prog_g Store.empty e with
  | Eval.Next (_, Ast.App (f, arg)) ->
      Alcotest.(check bool) "EP-FUN fired" true (Ast.is_value f);
      Alcotest.check expr "argument untouched" (add (num 1.0) (num 1.0)) arg
  | _ -> Alcotest.fail "expected an application step"

let test_value_no_step () =
  match Eval.step_pure prog_g Store.empty (num 1.0) with
  | Eval.Value -> ()
  | _ -> Alcotest.fail "values do not step"

let test_pure_mode_blocks_effects () =
  (match Eval.step_pure prog_g Store.empty (Ast.Set ("g", num 1.0)) with
  | Eval.Wrong _ -> ()
  | _ -> Alcotest.fail "ES-ASSIGN must not fire in pure mode");
  match Eval.step_pure prog_g Store.empty (Ast.Post (num 1.0)) with
  | Eval.Wrong _ -> ()
  | _ -> Alcotest.fail "ER-POST must not fire in pure mode"

let test_state_run () =
  let cfg, v =
    run_small Eff.State
      (Ast.App
         ( lam "_" Typ.unit_ (Ast.Get "g"),
           Ast.Set ("g", add (Ast.Get "g") (num 1.0)) ))
  in
  Alcotest.check value "result" (vnum 11.0) v;
  Alcotest.check value "store" (vnum 11.0)
    (Option.get (Store.find "g" cfg.Eval.store))

let test_render_run_boxed () =
  let cfg, v =
    run_small Eff.Render
      (Ast.Boxed
         ( Some (Srcid.of_int 3),
           Ast.App
             (lam "_" Typ.unit_ (num 9.0), Ast.Post (Ast.Get "g")) ))
  in
  Alcotest.check value "value" (vnum 9.0) v;
  Alcotest.check boxcontent "box built"
    [ Boxcontent.Box (Some (Srcid.of_int 3), [ Boxcontent.Leaf (vnum 10.0) ]) ]
    cfg.Eval.box

(* -- agreement with big-step --------------------------------------- *)

(** Generator of well-typed-by-construction numeric expressions using
    applications, tuples, projections, conditionals, globals and
    primitives — the pure/state fragment. *)
let gen_num_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 1 then
           oneof
             [
               (float_range (-100.0) 100.0 >|= fun f -> num f);
               pure (Ast.Get "g");
             ]
         else
           let sub = self (n / 2) in
           oneof
             [
               (float_range (-100.0) 100.0 >|= fun f -> num f);
               map2 add sub sub;
               (map2 (fun a b -> prim "mul" [ a; b ]) sub sub);
               (map2 (fun a b -> prim "min" [ a; b ]) sub sub);
               ( map2
                   (fun a b ->
                     Ast.App (lam "x" Typ.Num (add (Ast.Var "x") b), a))
                   sub sub );
               ( map2
                   (fun a b -> Ast.Proj (Ast.Tuple [ a; b ], 2))
                   sub sub );
               ( map3
                   (fun c a b ->
                     prim "cond" ~targs:[ Typ.Num ]
                       [
                         prim "gt" ~targs:[ Typ.Num ] [ c; num 0.0 ];
                         lam "_" Typ.unit_ a;
                         lam "_" Typ.unit_ b;
                       ])
                   sub sub sub );
               (sub >|= fun a -> Ast.App (Ast.Fn "inc", a));
             ])

let float_eq a b =
  Float.equal a b || (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let rec value_close (a : Ast.value) (b : Ast.value) =
  match (a, b) with
  | Ast.VNum x, Ast.VNum y -> float_eq x y
  | Ast.VTuple xs, Ast.VTuple ys ->
      List.length xs = List.length ys && List.for_all2 value_close xs ys
  | _ -> Ast.equal_value a b

let prop_small_big_agree =
  Helpers.qcheck ~count:300 "small-step closure = big-step (pure)"
    gen_num_expr (fun e ->
      let big = Eval.eval_pure prog_g Store.empty e in
      let _, small =
        Eval.run_small Eff.Pure prog_g (Eval.cfg_of_store Store.empty) e
      in
      value_close big small)

let prop_small_big_render =
  Helpers.qcheck ~count:150 "small-step = big-step (render, box content)"
    gen_num_expr (fun e ->
      let body = Ast.Boxed (None, Ast.App (lam "v" Typ.Num Ast.eunit, Ast.Post e)) in
      let _, big_box = Eval.eval_render prog_g Store.empty body in
      let cfg, _ =
        Eval.run_small Eff.Render prog_g (Eval.cfg_of_store Store.empty) body
      in
      (* compare number of items and structure up to float noise *)
      Boxcontent.count_items big_box = Boxcontent.count_items cfg.Eval.box)

let suite =
  [
    case "single EP-APP step" test_single_steps;
    case "leftmost-innermost context order" test_leftmost_order;
    case "function position before argument" test_app_function_first;
    case "values do not step" test_value_no_step;
    case "pure mode blocks effects" test_pure_mode_blocks_effects;
    case "stateful run" test_state_run;
    case "render run with ER-BOXED premise" test_render_run_boxed;
    prop_small_big_agree;
    prop_small_big_render;
  ]
