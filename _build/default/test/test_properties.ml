(** Cross-cutting property tests: printer round-trips on random
    surface programs, layout geometric invariants on random box trees,
    and compilation determinism. *)

open Live_core

(* ------------------------------------------------------------------ *)
(* Random surface programs                                             *)
(* ------------------------------------------------------------------ *)

(* Renders abstract statement shapes to source text. *)
module Sast_builder : sig
  type expr =
    [ `Num of float
    | `Ref of string
    | `Bin of string * expr * expr
    | `Cmp of string * expr * expr
    | `Call of string * expr list ]

  type stmt =
    [ `Var of string * expr
    | `Assign of string * expr
    | `Post of expr
    | `Attr of string * expr
    | `If of expr * stmt list * stmt list
    | `For of string * stmt list
    | `Boxed of stmt list ]

  val to_source : stmt list -> string
end = struct
  type expr =
    [ `Num of float
    | `Ref of string
    | `Bin of string * expr * expr
    | `Cmp of string * expr * expr
    | `Call of string * expr list ]

  type stmt =
    [ `Var of string * expr
    | `Assign of string * expr
    | `Post of expr
    | `Attr of string * expr
    | `If of expr * stmt list * stmt list
    | `For of string * stmt list
    | `Boxed of stmt list ]

  let rec expr_str : expr -> string = function
    | `Num f -> Pretty.string_of_num f
    | `Ref x -> x
    | `Bin (op, a, b) ->
        Printf.sprintf "(%s %s %s)" (expr_str a) op (expr_str b)
    | `Cmp (op, a, b) ->
        Printf.sprintf "(%s %s %s)" (expr_str a) op (expr_str b)
    | `Call (f, args) ->
        Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))

  let rec stmt_str ind (s : stmt) : string =
    let pad = String.make ind ' ' in
    match s with
    | `Var (x, e) -> Printf.sprintf "%svar %s := %s\n" pad x (expr_str e)
    | `Assign (x, e) -> Printf.sprintf "%s%s := %s\n" pad x (expr_str e)
    | `Post e -> Printf.sprintf "%spost str(%s)\n" pad (expr_str e)
    | `Attr (a, e) -> Printf.sprintf "%sbox.%s := %s\n" pad a (expr_str e)
    | `If (c, b1, b2) ->
        Printf.sprintf "%sif %s {\n%s%s} else {\n%s%s}\n" pad (expr_str c)
          (block_str (ind + 2) b1)
          pad
          (block_str (ind + 2) b2)
          pad
    | `For (x, b) ->
        Printf.sprintf "%sfor %s from 0 to 3 {\n%s%s}\n" pad x
          (block_str (ind + 2) b)
          pad
    | `Boxed b ->
        Printf.sprintf "%sboxed {\n%s%s}\n" pad (block_str (ind + 2) b) pad

  and block_str ind b = String.concat "" (List.map (stmt_str ind) b)

  let to_source (body : stmt list) : string =
    Printf.sprintf "page start()\ninit { }\nrender {\n%s}\n"
      (block_str 2 body)
end


(** A generator of well-formed surface programs: one page, a few
    globals, statements drawn from the full statement grammar with
    type-correct expressions by construction (numbers only, for
    simplicity — the point is exercising the printer and the
    compilation pipeline, not the type checker). *)
module Gen_program = struct
  open QCheck2.Gen

  let ident =
    let* c = char_range 'a' 'z' in
    let* suffix = string_size ~gen:(char_range 'a' 'z') (int_range 0 4) in
    let name = Printf.sprintf "%c%s" c suffix in
    (* avoid keywords and builtins *)
    if
      List.mem_assoc name Live_surface.Token.keywords
      || Live_surface.Builtins.exists name
    then pure ("v_" ^ name)
    else pure name

  (* numeric expressions over a set of in-scope variables *)
  let rec num_expr (vars : string list) n : Sast_builder.expr t =
    if n <= 1 then
      oneof
        ((float_range 0.0 100.0 >|= fun f -> `Num (Float.round f))
        ::
        (match vars with
        | [] -> []
        | _ -> [ (oneofl vars >|= fun v -> `Ref v) ]))
    else
      let sub = num_expr vars (n / 2) in
      oneof
        [
          (float_range 0.0 100.0 >|= fun f -> `Num (Float.round f));
          map2 (fun a b -> `Bin ("+", a, b)) sub sub;
          map2 (fun a b -> `Bin ("*", a, b)) sub sub;
          map2 (fun a b -> `Bin ("-", a, b)) sub sub;
          map2 (fun a b -> `Cmp ("<", a, b)) sub sub;
          (sub >|= fun a -> `Call ("floor", [ a ]));
          map2 (fun a b -> `Call ("max", [ a; b ])) sub sub;
        ]

  (* statements; returns (stmt, vars') where vars' includes new locals *)
  let rec stmt (vars : string list) (depth : int) :
      (Sast_builder.stmt * string list) t =
    let leaf =
      oneof
        ([
           (let* x = ident in
            let* e = num_expr vars 4 in
            pure (`Var (x, e), x :: vars));
           (let* e = num_expr vars 4 in
            pure (`Post e, vars));
           (let* e = num_expr vars 3 in
            pure (`Attr ("margin", e), vars));
         ]
        @
        match vars with
        | [] -> []
        | _ ->
            [
              (let* x = oneofl vars in
               let* e = num_expr vars 4 in
               pure (`Assign (x, e), vars));
            ])
    in
    if depth <= 0 then leaf
    else
      frequency
        [
          (4, leaf);
          ( 1,
            let* c = num_expr vars 3 in
            let* b1 = block vars (depth - 1) in
            let* b2 = block vars (depth - 1) in
            pure (`If (c, b1, b2), vars) );
          ( 1,
            let* x = ident in
            let* b = block (x :: vars) (depth - 1) in
            pure (`For (x, b), vars) );
          ( 1,
            let* b = block vars (depth - 1) in
            pure (`Boxed b, vars) );
        ]

  and block (vars : string list) (depth : int) : Sast_builder.stmt list t =
    let* n = int_range 1 4 in
    let rec go vars acc k =
      if k = 0 then pure (List.rev acc)
      else
        let* s, vars' = stmt vars depth in
        go vars' (s :: acc) (k - 1)
    in
    go vars [] n

  let program : string t =
    let* body = block [] 2 in
    pure (Sast_builder.to_source body)
end

let prop_printer_roundtrip_random =
  Helpers.qcheck ~count:150 "printer round-trips random programs"
    Gen_program.program (fun src ->
      match Live_surface.Compile.parse src with
      | Error e ->
          QCheck2.Test.fail_reportf "generated program does not parse: %s\n%s"
            (Live_surface.Compile.error_to_string e)
            src
      | Ok ast -> (
          let printed = Live_surface.Printer.program_to_string ast in
          match Live_surface.Compile.parse printed with
          | Error e ->
              QCheck2.Test.fail_reportf "printed program does not re-parse: %s"
                (Live_surface.Compile.error_to_string e)
          | Ok ast2 ->
              String.equal printed
                (Live_surface.Printer.program_to_string ast2)))

let prop_random_programs_compile_and_render =
  Helpers.qcheck ~count:100 "random programs compile, validate, and render"
    Gen_program.program (fun src ->
      match Live_surface.Compile.compile src with
      | Error e ->
          QCheck2.Test.fail_reportf "does not compile: %s\n%s"
            (Live_surface.Compile.error_to_string e)
            src
      | Ok c -> (
          match Machine.boot c.Live_surface.Compile.core with
          | Ok st ->
              State.display_valid st
              && State_typing.check_state st = Ok ()
          | Error Machine.Diverged -> true (* generated loops are bounded,
                                              but allow fuel caps *)
          | Error e ->
              QCheck2.Test.fail_reportf "boot failed: %s"
                (Machine.error_to_string e)))

let prop_compile_deterministic =
  Helpers.qcheck ~count:60 "compilation is deterministic"
    Gen_program.program (fun src ->
      match
        (Live_surface.Compile.compile src, Live_surface.Compile.compile src)
      with
      | Ok a, Ok b ->
          let da = Program.defs a.Live_surface.Compile.core in
          let db = Program.defs b.Live_surface.Compile.core in
          List.length da = List.length db
          && List.for_all2
               (fun x y ->
                 match (x, y) with
                 | ( Program.Global { name = n1; ty = t1; init = i1 },
                     Program.Global { name = n2; ty = t2; init = i2 } ) ->
                     n1 = n2 && Typ.equal t1 t2 && Ast.equal_value i1 i2
                 | ( Program.Func { name = n1; ty = t1; body = b1 },
                     Program.Func { name = n2; ty = t2; body = b2 } ) ->
                     n1 = n2 && Typ.equal t1 t2 && Ast.equal_expr b1 b2
                 | ( Program.Page { name = n1; render = r1; init = i1; _ },
                     Program.Page { name = n2; render = r2; init = i2; _ } )
                   ->
                     n1 = n2 && Ast.equal_expr r1 r2 && Ast.equal_expr i1 i2
                 | _ -> false)
               da db
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Layout invariants on random box trees                               *)
(* ------------------------------------------------------------------ *)

let gen_boxtree : Boxcontent.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf_text = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
  let attr =
    oneof
      [
        (int_range 0 3 >|= fun n ->
         Boxcontent.Attr ("margin", Ast.VNum (float_of_int n)));
        (int_range 0 2 >|= fun n ->
         Boxcontent.Attr ("padding", Ast.VNum (float_of_int n)));
        (bool >|= fun b ->
         Boxcontent.Attr ("border", Ast.vbool b));
        (oneofl [ "vertical"; "horizontal" ] >|= fun d ->
         Boxcontent.Attr ("direction", Ast.VStr d));
        (oneofl [ "left"; "center"; "right" ] >|= fun a ->
         Boxcontent.Attr ("align", Ast.VStr a));
      ]
  in
  sized
  @@ fix (fun self n ->
         let item =
           if n <= 1 then
             oneof
               [
                 (leaf_text >|= fun s -> Boxcontent.Leaf (Ast.VStr s));
                 attr;
               ]
           else
             frequency
               [
                 (3, leaf_text >|= fun s -> Boxcontent.Leaf (Ast.VStr s));
                 (2, attr);
                 ( 2,
                   list_size (int_range 0 4) (self (n / 3)) >|= fun items ->
                   Boxcontent.Box (None, List.concat items) );
               ]
         in
         list_size (int_range 0 5) item)

let rects_disjoint (a : Live_ui.Geometry.rect) (b : Live_ui.Geometry.rect) =
  Live_ui.Geometry.area (Live_ui.Geometry.intersect a b) = 0

let rect_inside (inner : Live_ui.Geometry.rect)
    (outer : Live_ui.Geometry.rect) =
  Live_ui.Geometry.equal
    (Live_ui.Geometry.intersect inner outer)
    inner
  || Live_ui.Geometry.area inner = 0

let prop_layout_containment =
  Helpers.qcheck ~count:200 "children lie inside their parent's inner box"
    gen_boxtree (fun tree ->
      let root = Live_ui.Layout.layout_page ~width:40 tree in
      let ok = ref true in
      Live_ui.Layout.iter_nodes
        (fun n ->
          List.iter
            (fun item ->
              match item with
              | Live_ui.Layout.Child c ->
                  if
                    not
                      (rect_inside c.Live_ui.Layout.frame
                         n.Live_ui.Layout.frame)
                  then ok := false
              | Live_ui.Layout.Text _ -> ())
            n.Live_ui.Layout.items)
        root;
      !ok)

let prop_layout_siblings_disjoint =
  Helpers.qcheck ~count:200 "sibling boxes do not overlap" gen_boxtree
    (fun tree ->
      let root = Live_ui.Layout.layout_page ~width:40 tree in
      let ok = ref true in
      Live_ui.Layout.iter_nodes
        (fun n ->
          let child_rects =
            List.filter_map
              (function
                | Live_ui.Layout.Child c -> Some c.Live_ui.Layout.outer
                | Live_ui.Layout.Text _ -> None)
              n.Live_ui.Layout.items
          in
          let rec pairs = function
            | [] -> ()
            | r :: rest ->
                List.iter
                  (fun r' -> if not (rects_disjoint r r') then ok := false)
                  rest;
                pairs rest
          in
          pairs child_rects)
        root;
      !ok)

let prop_layout_cache_transparent =
  Helpers.qcheck ~count:100 "layout cache is observationally invisible"
    gen_boxtree (fun tree ->
      let plain = Live_ui.Render.screenshot ~width:40 tree in
      let cache = Live_ui.Layout.create_cache () in
      let fb, _ = Live_ui.Render.render_page ~cache ~width:40 tree in
      String.equal plain (Live_ui.Framebuffer.to_text fb))

let prop_hittest_consistent =
  Helpers.qcheck ~count:100 "nodes_at agrees with rect containment"
    gen_boxtree (fun tree ->
      let root = Live_ui.Layout.layout_page ~width:40 tree in
      (* probe a grid of points *)
      let ok = ref true in
      for x = 0 to 39 do
        for y = 0 to min 40 (Live_ui.Layout.total_height root) - 1 do
          let chain = Live_ui.Layout.nodes_at root ~x ~y in
          List.iter
            (fun (n : Live_ui.Layout.node) ->
              if not (Live_ui.Geometry.contains n.Live_ui.Layout.frame ~x ~y)
              then ok := false)
            chain
        done
      done;
      !ok)

let suite =
  [
    prop_printer_roundtrip_random;
    prop_random_programs_compile_and_render;
    prop_compile_deterministic;
    prop_layout_containment;
    prop_layout_siblings_disjoint;
    prop_layout_cache_transparent;
    prop_hittest_consistent;
  ]
