(** Metatheory (Sec. 4.3): preservation and progress, checked by
    property-based testing over well-typed-by-construction expressions,
    plus the system-level invariant that arbitrary interleavings of
    user actions and code updates keep the system state well-typed.

    The generator builds expressions for a target type and effect
    bound, drawing from every expression former of Fig. 6 (values,
    applications, tuples, projections, globals, assignment, push/pop,
    boxed/post/attribute writes) and total primitives; the partial
    primitives ([head]/[nth]) are excluded, as documented in
    {!Live_core.Prim}. *)

open Live_core
open Helpers

let prog =
  Program.of_defs
    [
      Program.Global { name = "gn"; ty = Typ.Num; init = vnum 1.0 };
      Program.Global { name = "gs"; ty = Typ.Str; init = vstr "s" };
      Program.Func
        {
          name = "inc";
          ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
          body = lam "x" Typ.Num (add (Ast.Var "x") (num 1.0));
        };
      Program.Func
        {
          name = "poke";
          ty = Typ.Fn (Typ.Num, Eff.State, Typ.unit_);
          body = lam "x" Typ.Num (Ast.Set ("gn", Ast.Var "x"));
        };
      Program.Func
        {
          name = "show";
          ty = Typ.Fn (Typ.Num, Eff.Render, Typ.unit_);
          body = lam "x" Typ.Num (Ast.Post (Ast.Var "x"));
        };
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ Ast.eunit;
          render = lam "_" Typ.unit_ (Ast.Post (Ast.Get "gn"));
        };
      Program.Page
        {
          name = "detail";
          arg_ty = Typ.Num;
          init = lam "x" Typ.Num Ast.eunit;
          render = lam "x" Typ.Num (Ast.Post (Ast.Var "x"));
        };
    ]

(** Generate a closed expression of the given type whose least effect
    is below [eff]. *)
let rec gen_expr (eff : Eff.t) (ty : Typ.t) (n : int) : Ast.expr QCheck2.Gen.t
    =
  let open QCheck2.Gen in
  let leaf =
    match ty with
    | Typ.Num ->
        oneof
          [ (float_range (-50.0) 50.0 >|= fun f -> num f); pure (Ast.Get "gn") ]
    | Typ.Str -> oneof [ (string_size (int_range 0 6) >|= str); pure (Ast.Get "gs") ]
    | Typ.Tuple ts ->
        (* recurse with tiny budget *)
        let rec all = function
          | [] -> pure []
          | t :: rest ->
              gen_expr eff t 1 >>= fun e ->
              all rest >|= fun es -> e :: es
        in
        all ts >|= fun es -> Ast.Tuple es
    | Typ.List t ->
        list_size (int_range 0 3) (gen_expr eff t 1) >|= fun es ->
        List.fold_right
          (fun e acc -> prim "cons" ~targs:[ t ] [ e; acc ])
          es
          (prim "nil" ~targs:[ t ] [])
    | Typ.Fn (dom, lat, cod) ->
        gen_expr lat cod 1 >|= fun body -> lam "_" dom body
  in
  if n <= 1 then leaf
  else
    let sub t = gen_expr eff t (n / 2) in
    let general =
      [
        (* beta redex of the right type *)
        ( 2,
          sub Typ.Num >>= fun arg ->
          sub ty >|= fun body -> Ast.App (lam "_" Typ.Num body, arg) );
        (* projection from a wider tuple *)
        ( 1,
          sub ty >>= fun a ->
          sub Typ.Num >|= fun b -> Ast.Proj (Ast.Tuple [ a; b ], 1) );
        (* lazy conditional *)
        ( 2,
          sub Typ.Num >>= fun c ->
          sub ty >>= fun a ->
          sub ty >|= fun b ->
          prim "cond" ~targs:[ ty ]
            [
              prim "gt" ~targs:[ Typ.Num ] [ c; num 0.0 ];
              lam "_" Typ.unit_ a;
              lam "_" Typ.unit_ b;
            ] );
      ]
    in
    let typed =
      match ty with
      | Typ.Num ->
          [
            (3, map2 add (sub Typ.Num) (sub Typ.Num));
            ( 2,
              map2 (fun a b -> prim "max" [ a; b ]) (sub Typ.Num) (sub Typ.Num)
            );
            (2, sub Typ.Num >|= fun a -> Ast.App (Ast.Fn "inc", a));
            (1, sub Typ.Str >|= fun s -> prim "str_len" [ s ]);
          ]
      | Typ.Str ->
          [
            ( 3,
              map2 (fun a b -> prim "concat" [ a; b ]) (sub Typ.Str)
                (sub Typ.Str) );
            (2, sub Typ.Num >|= fun a -> prim "str_of" [ a ]);
          ]
      | Typ.Tuple [] ->
          let stateful =
            if Eff.sub Eff.State eff then
              [
                (3, sub Typ.Num >|= fun a -> Ast.Set ("gn", a));
                (1, sub Typ.Str >|= fun s -> Ast.Set ("gs", s));
                (1, sub Typ.Num >|= fun a -> Ast.Push ("detail", a));
                (1, pure Ast.Pop);
                (2, sub Typ.Num >|= fun a -> Ast.App (Ast.Fn "poke", a));
              ]
            else []
          in
          let rendering =
            if Eff.sub Eff.Render eff then
              [
                (3, sub Typ.Num >|= fun a -> Ast.Post a);
                (2, sub Typ.Num >|= fun a -> Ast.SetAttr ("margin", a));
                ( 2,
                  sub Typ.unit_ >|= fun body ->
                  Ast.Boxed (Some (Srcid.of_int 99), body) );
                (1, sub Typ.Num >|= fun a -> Ast.App (Ast.Fn "show", a));
              ]
            else []
          in
          stateful @ rendering
      | _ -> []
    in
    frequency ((1, leaf) :: (general @ typed))

let gen_effect = QCheck2.Gen.oneofl [ Eff.Pure; Eff.State; Eff.Render ]

let gen_typed_expr : (Eff.t * Typ.t * Ast.expr) QCheck2.Gen.t =
  let open QCheck2.Gen in
  gen_effect >>= fun eff ->
  oneofl
    [ Typ.Num; Typ.Str; Typ.unit_; Typ.Tuple [ Typ.Num; Typ.Str ] ]
  >>= fun ty ->
  int_range 2 24 >>= fun n ->
  gen_expr eff ty n >|= fun e -> (eff, ty, e)

(* sanity: the generator only produces well-typed terms *)
let prop_generator_sound =
  Helpers.qcheck ~count:500 "generated terms are well-typed"
    gen_typed_expr (fun (eff, ty, e) ->
      match Typecheck.check prog Typecheck.empty_gamma eff e ty with
      | Ok () -> true
      | Error _ -> false)

(* progress: a well-typed non-value can always step *)
let prop_progress =
  Helpers.qcheck ~count:500 "progress" gen_typed_expr (fun (eff, _, e) ->
      let cfg = Eval.cfg_of_store Store.empty in
      let rec run budget cfg e =
        budget <= 0
        ||
        match Eval.step eff prog cfg e with
        | Eval.Value -> true
        | Eval.Next (cfg', e') -> run (budget - 1) cfg' e'
        | Eval.Wrong m ->
            QCheck2.Test.fail_reportf "stuck: %s on %s" m
              (Pretty.expr_to_string e)
      in
      run 2_000 cfg e)

(* preservation: every step preserves the type (up to subtyping) and
   keeps store/queue/display content well-typed *)
let prop_preservation =
  Helpers.qcheck ~count:500 "preservation" gen_typed_expr
    (fun (eff, ty, e) ->
      let cfg = Eval.cfg_of_store Store.empty in
      let ok_cfg (cfg : Eval.cfg) =
        State_typing.check_store prog cfg.Eval.store = Ok ()
        && State_typing.check_queue prog cfg.Eval.queue = Ok ()
        && State_typing.check_display prog (State.Shown cfg.Eval.box) = Ok ()
      in
      let rec run budget cfg e =
        budget <= 0
        ||
        match Eval.step eff prog cfg e with
        | Eval.Value -> true
        | Eval.Wrong _ -> false
        | Eval.Next (cfg', e') -> (
            match Typecheck.check prog Typecheck.empty_gamma eff e' ty with
            | Error m ->
                QCheck2.Test.fail_reportf
                  "type not preserved (%s): %s stepped to %s" m
                  (Pretty.expr_to_string e) (Pretty.expr_to_string e')
            | Ok () ->
                if not (ok_cfg cfg') then
                  QCheck2.Test.fail_reportf "configuration became ill-typed"
                else run (budget - 1) cfg' e')
      in
      run 2_000 cfg e)

(* evaluation agreement at scale: small-step closure = big-step *)
let prop_agreement =
  Helpers.qcheck ~count:300 "small-step = big-step on generated terms"
    gen_typed_expr (fun (eff, _, e) ->
      let run_big () =
        match eff with
        | Eff.Pure -> Some (Eval.eval_pure prog Store.empty e)
        | Eff.State ->
            let v, _, _ = Eval.eval_state prog Store.empty Fqueue.empty e in
            Some v
        | Eff.Render ->
            let v, _ = Eval.eval_render prog Store.empty e in
            Some v
      in
      match run_big () with
      | None -> true
      | Some big ->
          let _, small =
            Eval.run_small eff prog (Eval.cfg_of_store Store.empty) e
          in
          (* floats: generated arithmetic is deterministic and shared,
             so exact equality holds *)
          Ast.equal_value big small)

(* ------------------------------------------------------------------ *)
(* System-level: random drivers keep the state well-typed              *)
(* ------------------------------------------------------------------ *)

type action = Do_tap | Do_back | Do_update of int

let programs =
  [|
    prog;
    counter_core ();
    counter_core ~init_body:(Ast.Set ("n", num 5.0)) ();
  |]

let gen_actions : action list QCheck2.Gen.t =
  let open QCheck2.Gen in
  list_size (int_range 1 25)
    (frequency
       [
         (3, pure Do_tap);
         (2, pure Do_back);
         (2, int_range 0 (Array.length programs - 1) >|= fun i -> Do_update i);
       ])

let prop_system_typing =
  Helpers.qcheck ~count:100 "random drives keep |- (C,D,S,P,Q)"
    QCheck2.Gen.(pair (int_range 0 (Array.length programs - 1)) gen_actions)
    (fun (p0, actions) ->
      let st = ref (Option.get (Result.to_option (Machine.boot programs.(p0)))) in
      let apply = function
        | Do_tap -> (
            match Machine.tap_first !st with
            | Ok st' -> (
                match Machine.run_to_stable st' with
                | Ok st'' -> st := st''
                | Error _ -> ())
            | Error _ -> ())
        | Do_back -> (
            match Machine.run_to_stable (Machine.back !st) with
            | Ok st' -> st := st'
            | Error _ -> ())
        | Do_update i -> (
            match Machine.update programs.(i) !st with
            | Ok st' -> (
                match Machine.run_to_stable st' with
                | Ok st'' -> st := st''
                | Error _ -> ())
            | Error _ -> ())
      in
      List.iter apply actions;
      match State_typing.check_state !st with
      | Ok () -> true
      | Error m -> QCheck2.Test.fail_reportf "ill-typed after drive: %s" m)

let suite =
  [
    prop_generator_sound;
    prop_progress;
    prop_preservation;
    prop_agreement;
    prop_system_typing;
  ]
