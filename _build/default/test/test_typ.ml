(** Types (Fig. 6) and the subtyping induced by T-SUB. *)

open Live_core

let gen_eff = QCheck2.Gen.oneofl [ Eff.Pure; Eff.State; Eff.Render ]

(** Random types, arrow-free with probability ~1/2. *)
let gen_typ : Typ.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 1 then oneofl [ Typ.Num; Typ.Str ]
         else
           frequency
             [
               (2, oneofl [ Typ.Num; Typ.Str ]);
               ( 2,
                 list_size (int_range 0 3) (self (n / 2)) >|= fun ts ->
                 Typ.Tuple ts );
               (1, self (n / 2) >|= fun t -> Typ.List t);
               ( 1,
                 map3
                   (fun a e r -> Typ.Fn (a, e, r))
                   (self (n / 2)) gen_eff (self (n / 2)) );
             ])

let test_unit_is_empty_tuple () =
  Alcotest.check Helpers.typ "unit" (Typ.Tuple []) Typ.unit_

let test_arrow_free () =
  let af t = Typ.arrow_free t in
  Alcotest.(check bool) "number" true (af Typ.Num);
  Alcotest.(check bool) "string list" true (af (Typ.List Typ.Str));
  Alcotest.(check bool)
    "nested tuple" true
    (af (Typ.Tuple [ Typ.Num; Typ.Tuple [ Typ.Str; Typ.List Typ.Num ] ]));
  Alcotest.(check bool)
    "handler" false
    (af Typ.handler);
  Alcotest.(check bool)
    "function inside tuple" false
    (af (Typ.Tuple [ Typ.Num; Typ.Fn (Typ.Num, Eff.Pure, Typ.Num) ]));
  Alcotest.(check bool)
    "function inside list" false
    (af (Typ.List (Typ.Fn (Typ.unit_, Eff.State, Typ.unit_))))

let test_sub_latent_effect () =
  (* T-SUB: a pure-latent function can be used at any latent effect *)
  let f mu = Typ.Fn (Typ.Num, mu, Typ.Str) in
  Alcotest.(check bool) "p -> s" true (Typ.sub (f Eff.Pure) (f Eff.State));
  Alcotest.(check bool) "p -> r" true (Typ.sub (f Eff.Pure) (f Eff.Render));
  Alcotest.(check bool) "s -> r" false (Typ.sub (f Eff.State) (f Eff.Render));
  Alcotest.(check bool) "s -> p" false (Typ.sub (f Eff.State) (f Eff.Pure))

let test_sub_variance () =
  (* contravariant domain, covariant codomain *)
  let mk dom cod = Typ.Fn (dom, Eff.Pure, cod) in
  let sub_dom = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num) in
  let super_dom = Typ.Fn (Typ.Num, Eff.State, Typ.Num) in
  Alcotest.(check bool)
    "contravariance" true
    (Typ.sub (mk super_dom Typ.Num) (mk sub_dom Typ.Num));
  Alcotest.(check bool)
    "no covariant domain" false
    (Typ.sub (mk sub_dom Typ.Num) (mk super_dom Typ.Num));
  Alcotest.(check bool)
    "covariant codomain" true
    (Typ.sub (mk Typ.Num sub_dom) (mk Typ.Num super_dom))

let test_pp () =
  let show t = Typ.to_string t in
  Alcotest.(check string) "number" "number" (show Typ.Num);
  Alcotest.(check string) "unit" "()" (show Typ.unit_);
  Alcotest.(check string)
    "handler" "() -s-> ()" (show Typ.handler);
  Alcotest.(check string)
    "list" "[(number, string)]"
    (show (Typ.List (Typ.Tuple [ Typ.Num; Typ.Str ])));
  Alcotest.(check string)
    "nested arrow domain" "(number -p-> number) -r-> ()"
    (show (Typ.Fn (Typ.Fn (Typ.Num, Eff.Pure, Typ.Num), Eff.Render, Typ.unit_)))

let prop_equal_refl =
  Helpers.qcheck "equal reflexive" gen_typ (fun t -> Typ.equal t t)

let prop_sub_refl =
  Helpers.qcheck "sub reflexive" gen_typ (fun t -> Typ.sub t t)

let prop_sub_antisym =
  Helpers.qcheck "sub antisymmetric"
    QCheck2.Gen.(pair gen_typ gen_typ)
    (fun (a, b) -> (not (Typ.sub a b && Typ.sub b a)) || Typ.equal a b)

let prop_equal_implies_sub =
  Helpers.qcheck "equal implies sub"
    QCheck2.Gen.(pair gen_typ gen_typ)
    (fun (a, b) -> (not (Typ.equal a b)) || Typ.sub a b)

let prop_size_positive =
  Helpers.qcheck "size positive" gen_typ (fun t -> Typ.size t >= 1)

let suite =
  [
    Helpers.case "unit is the empty tuple" test_unit_is_empty_tuple;
    Helpers.case "arrow_free (T-C-GLOBAL side condition)" test_arrow_free;
    Helpers.case "T-SUB on latent effects" test_sub_latent_effect;
    Helpers.case "subtyping variance" test_sub_variance;
    Helpers.case "printing" test_pp;
    prop_equal_refl;
    prop_sub_refl;
    prop_sub_antisym;
    prop_equal_implies_sub;
    prop_size_positive;
  ]
