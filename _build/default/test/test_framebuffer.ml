(** The character-cell framebuffer. *)

open Live_ui

let mk w h = Framebuffer.create ~width:w ~height:h

let test_create_blank () =
  let fb = mk 4 2 in
  Alcotest.(check string) "blank" "\n\n" (Framebuffer.to_text fb)

let test_set_get () =
  let fb = mk 4 2 in
  Framebuffer.set_char fb ~x:1 ~y:1 'x';
  Alcotest.(check char) "get" 'x' (Framebuffer.get fb ~x:1 ~y:1).Framebuffer.ch;
  Alcotest.(check string) "text" "\n x\n" (Framebuffer.to_text fb)

let test_out_of_bounds_ignored () =
  let fb = mk 2 2 in
  Framebuffer.set_char fb ~x:5 ~y:5 'x';
  Framebuffer.set_char fb ~x:(-1) ~y:0 'x';
  Alcotest.(check string) "unchanged" "\n\n" (Framebuffer.to_text fb);
  Alcotest.(check char) "oob get is blank" ' '
    (Framebuffer.get fb ~x:99 ~y:99).Framebuffer.ch

let test_draw_text_clipping () =
  let fb = mk 6 1 in
  Framebuffer.draw_text fb ~x:2 ~y:0 "hello world";
  Alcotest.(check string) "clipped at width" "  hell\n" (Framebuffer.to_text fb);
  let fb2 = mk 10 1 in
  Framebuffer.draw_text fb2 ~x:0 ~y:0 ~max_x:3 "abcdef";
  Alcotest.(check string) "clipped at max_x" "abc\n" (Framebuffer.to_text fb2)

let test_fill_and_text_compose () =
  let fb = mk 4 1 in
  Framebuffer.fill_rect fb
    (Geometry.make ~x:0 ~y:0 ~w:4 ~h:1)
    ~bg:(Color.of_name "red");
  Framebuffer.draw_text fb ~x:0 ~y:0 "ab";
  let c = Framebuffer.get fb ~x:0 ~y:0 in
  Alcotest.(check char) "text over fill" 'a' c.Framebuffer.ch;
  Alcotest.(check bool) "background preserved" true
    (Color.equal c.Framebuffer.bg (Color.of_name "red"))

let test_border () =
  let fb = mk 5 3 in
  Framebuffer.draw_border fb (Geometry.make ~x:0 ~y:0 ~w:5 ~h:3) ();
  Alcotest.(check string) "ascii frame" "+---+\n|   |\n+---+\n"
    (Framebuffer.to_text fb)

let test_tiny_border_skipped () =
  let fb = mk 3 1 in
  Framebuffer.draw_border fb (Geometry.make ~x:0 ~y:0 ~w:3 ~h:1) ();
  Alcotest.(check string) "no border drawn on 1-high rect" "\n"
    (Framebuffer.to_text fb)

let test_diff_cells () =
  let a = mk 3 1 and b = mk 3 1 in
  Alcotest.(check int) "identical" 0 (Framebuffer.diff_cells a b);
  Framebuffer.set_char b ~x:0 ~y:0 'x';
  Framebuffer.set_char b ~x:2 ~y:0 'y';
  Alcotest.(check int) "two differ" 2 (Framebuffer.diff_cells a b);
  let c = mk 4 1 in
  Alcotest.(check int) "size mismatch" max_int (Framebuffer.diff_cells a c)

let test_ansi_output () =
  let fb = mk 2 1 in
  Framebuffer.set fb ~x:0 ~y:0
    {
      Framebuffer.ch = 'x';
      fg = Color.of_name "red";
      bg = Color.of_name "blue";
      bold = true;
    };
  let s = Framebuffer.to_ansi fb in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "bold sgr" true (contains "1;38;5;196;48;5;21m");
  Alcotest.(check bool) "reset" true (contains "\027[0m");
  Alcotest.(check bool) "content" true (contains "x")

let test_colors () =
  Alcotest.(check bool) "light blue known" true (Color.known "light blue");
  Alcotest.(check bool) "case-insensitive" true (Color.known "Light Blue ");
  Alcotest.(check bool) "unknown falls back" true
    (Color.equal (Color.of_name "vermillion-ish") Color.Default);
  Alcotest.(check string) "fg sgr" "38;5;117"
    (Color.sgr_fg (Color.of_name "light blue"));
  Alcotest.(check string) "default is empty" "" (Color.sgr_fg Color.Default)

let suite =
  [
    Helpers.case "blank buffer" test_create_blank;
    Helpers.case "set/get" test_set_get;
    Helpers.case "out-of-bounds writes ignored" test_out_of_bounds_ignored;
    Helpers.case "text clipping" test_draw_text_clipping;
    Helpers.case "text composes over fills" test_fill_and_text_compose;
    Helpers.case "borders" test_border;
    Helpers.case "degenerate borders skipped" test_tiny_border_skipped;
    Helpers.case "diff_cells" test_diff_cells;
    Helpers.case "ANSI output" test_ansi_output;
    Helpers.case "color palette" test_colors;
  ]
