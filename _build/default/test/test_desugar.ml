(** The desugarer, tested semantically: compile surface programs and
    check the behaviour of the lowered code — loops as recursion
    through generated global functions, conditionals as thunks, local
    mutation as shadowing and threading (Sec. 4.1's encodings). *)

open Live_core
open Helpers

(** Compile a render body, boot, and return the posted leaves of the
    page's single top-level box (or of the implicit top box). *)
let render_leaves (body : string) : Ast.value list =
  let src = Printf.sprintf "page start()\ninit { }\nrender {\n%s\n}" body in
  let c = ok_compile src in
  let st = boot c.Live_surface.Compile.core in
  Boxcontent.own_leaves (get_display st)

let check_posts name body expected =
  Alcotest.(check (list value)) name expected (render_leaves body)

let nums xs = List.map vnum xs
let strs xs = List.map vstr xs

let test_straightline_shadowing () =
  check_posts "sequential assignment"
    "var x := 1\nx := x + 1\nx := x * 10\npost x"
    (nums [ 20.0 ])

let test_if_threading () =
  check_posts "if assigns an outer local"
    "var x := 1\nif x > 0 { x := 42 }\npost x"
    (nums [ 42.0 ]);
  check_posts "else branch"
    "var x := 0\nif x > 0 { x := 1 } else { x := 2 }\npost x"
    (nums [ 2.0 ]);
  check_posts "both branches assign different vars"
    "var a := 0\nvar b := 0\nif 1 { a := 5 } else { b := 6 }\npost a\npost b"
    (nums [ 5.0; 0.0 ]);
  check_posts "nested ifs"
    "var x := 0\nif 1 { if 1 { x := 7 } }\npost x"
    (nums [ 7.0 ])

let test_if_scoping () =
  (* a var declared inside a branch is not visible outside: the
     checker rejects the reference *)
  let src =
    "page start()\ninit { }\nrender { if 1 { var y := 1 }\npost y }"
  in
  match Live_surface.Compile.compile src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "branch-local variable escaped its scope"

let test_while_loop () =
  check_posts "sum 0..9"
    "var s := 0\nvar i := 0\nwhile i < 10 { s := s + i\ni := i + 1 }\npost s"
    (nums [ 45.0 ]);
  check_posts "zero iterations"
    "var s := 5\nwhile 0 { s := 99 }\npost s"
    (nums [ 5.0 ]);
  check_posts "loop reading an unassigned outer var"
    "var limit := 3\nvar n := 0\nwhile n < limit { n := n + 1 }\npost n"
    (nums [ 3.0 ])

let test_for_loop () =
  check_posts "for is half-open [a, b)"
    "var s := 0\nfor i from 0 to 5 { s := s + i }\npost s"
    (nums [ 10.0 ]);
  check_posts "empty range" "var s := 1\nfor i from 5 to 5 { s := 0 }\npost s"
    (nums [ 1.0 ]);
  check_posts "nested for"
    "var s := 0\nfor i from 0 to 3 { for j from 0 to 3 { s := s + 1 } }\npost s"
    (nums [ 9.0 ])

let test_foreach () =
  check_posts "foreach threads locals"
    "var s := \"\"\nforeach w in [\"a\", \"b\", \"c\"] { s := s ++ w }\npost s"
    (strs [ "abc" ]);
  check_posts "foreach over empty list"
    "var s := 9\nforeach x in drop([1], 1) { s := x }\npost s"
    (nums [ 9.0 ]);
  check_posts "binder shadows outer"
    "var x := 100\nvar s := 0\nforeach x in [1, 2] { s := s + x }\npost s\npost x"
    (nums [ 3.0; 100.0 ])

let test_short_circuit () =
  (* and/or must not evaluate their right operand eagerly: head([]) on
     the right would get stuck *)
  check_posts "and short-circuits"
    "var xs := drop([1], 1)\nvar ok := 0\nif len(xs) > 0 and head(xs) > 0 { ok := 1 }\npost ok"
    (nums [ 0.0 ]);
  check_posts "or short-circuits"
    "var xs := drop([1], 1)\nvar ok := 0\nif len(xs) == 0 or head(xs) > 0 { ok := 1 }\npost ok"
    (nums [ 1.0 ])

let test_boxed_threading () =
  (* Fig. 5's pattern: a loop over boxed rows where the body mutates a
     local across iterations (the amortization balance) *)
  check_posts "local threads through boxed statements"
    "var total := 0\nfor i from 0 to 3 { boxed { total := total + i\npost total } }\npost total"
    (nums [ 3.0 ])

let test_boxed_structure () =
  let src =
    "page start()\ninit { }\nrender { boxed { post 1\nboxed { post 2 } }\npost 3 }"
  in
  let c = ok_compile src in
  let st = boot c.Live_surface.Compile.core in
  let b = get_display st in
  Alcotest.(check int) "one top-level box" 1 (List.length (Boxcontent.children b));
  Alcotest.(check (list value)) "top-level leaf" [ vnum 3.0 ]
    (Boxcontent.own_leaves b);
  let _, inner = List.hd (Boxcontent.children b) in
  Alcotest.(check (list value)) "inner leaf" [ vnum 1.0 ]
    (Boxcontent.own_leaves inner);
  Alcotest.(check int) "nested box" 1 (List.length (Boxcontent.children inner))

let test_functions_and_returns () =
  let src =
    {|fun fib(n : number) : number {
  var r := n
  if n > 1 { r := fib(n - 1) + fib(n - 2) }
  return r
}
page start()
init { }
render { post str(fib(12)) }
|}
  in
  let c = ok_compile src in
  let st = boot c.Live_surface.Compile.core in
  Alcotest.(check (list value)) "fib 12" [ vstr "144" ]
    (Boxcontent.own_leaves (get_display st))

let test_multi_param () =
  let src =
    {|fun clamp(x : number, lo : number, hi : number) : number {
  return min(max(x, lo), hi)
}
page start()
init { }
render { post str(clamp(5, 1, 3)) }
|}
  in
  let c = ok_compile src in
  let st = boot c.Live_surface.Compile.core in
  Alcotest.(check (list value)) "clamp" [ vstr "3" ]
    (Boxcontent.own_leaves (get_display st))

let test_handler_captures_value () =
  (* the loop binder captured in a handler keeps the iteration's value *)
  let src =
    {|global picked : number = -1
page start()
init { }
render {
  foreach i in [10, 20, 30] {
    boxed {
      post i
      on tapped { picked := i }
    }
  }
}
|}
  in
  let c = ok_compile src in
  let st = boot c.Live_surface.Compile.core in
  let b = get_display st in
  (* tap the *second* box's handler *)
  let handlers = Boxcontent.handlers b in
  Alcotest.(check int) "three handlers" 3 (List.length handlers);
  let st =
    stable (ok_machine "tap" (Machine.tap st ~handler:(List.nth handlers 1)))
  in
  Alcotest.(check (float 0.0)) "captured 20" 20.0 (get_store_num st "picked")

let test_generated_functions_are_hidden () =
  (* loop functions are compiler-named; they never collide with user
     names and the core re-check accepts them (validated on compile) *)
  let c =
    ok_compile
      "page start()\ninit { }\nrender { var s := 0\nwhile s < 3 { s := s + 1 } }"
  in
  let gen_funcs =
    List.filter
      (fun (n, _, _) -> Live_core.Ident.is_generated n)
      (Program.functions c.Live_surface.Compile.core)
  in
  Alcotest.(check int) "one generated loop function" 1 (List.length gen_funcs)

let test_translation_validation_on_workloads () =
  (* every workload's generated core code passes C |- C (Fig. 11) *)
  let check name (core : Program.t) =
    match State_typing.check_code core with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: generated code ill-typed: %s" name m
  in
  check "mortgage" (Live_workloads.Mortgage.core ());
  check "mortgage i2 i3" (Live_workloads.Mortgage.core ~i2:true ~i3:true ());
  check "counter" (Live_workloads.Counter.core ());
  check "todo" (Live_workloads.Todo.core ());
  check "gallery" (Live_workloads.Gallery.core ());
  check "flat"
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.flat_rows ~n:10))
      .Live_surface.Compile.core

let suite =
  [
    case "straight-line mutation is shadowing" test_straightline_shadowing;
    case "if threads assigned locals" test_if_threading;
    case "branch locals do not escape" test_if_scoping;
    case "while loops" test_while_loop;
    case "for loops" test_for_loop;
    case "foreach loops" test_foreach;
    case "and/or short-circuit" test_short_circuit;
    case "locals thread through boxed" test_boxed_threading;
    case "boxed builds nested content" test_boxed_structure;
    case "recursive functions with return" test_functions_and_returns;
    case "multi-parameter functions" test_multi_param;
    case "handlers capture by value" test_handler_captures_value;
    case "loop functions are generated and hidden" test_generated_functions_are_hidden;
    case "translation validation on workloads" test_translation_validation_on_workloads;
  ]
