(** Small-module coverage: source locations, style interpretation,
    identifiers, geometry. *)

open Helpers

(* -- Loc ------------------------------------------------------------- *)

let mkpos line col offset = { Live_surface.Loc.line; col; offset }

let test_loc_merge () =
  let a = Live_surface.Loc.make (mkpos 1 1 0) (mkpos 1 5 4) in
  let b = Live_surface.Loc.make (mkpos 2 1 10) (mkpos 2 3 12) in
  let m = Live_surface.Loc.merge a b in
  Alcotest.(check int) "start" 0 m.Live_surface.Loc.start.Live_surface.Loc.offset;
  Alcotest.(check int) "stop" 12 m.Live_surface.Loc.stop.Live_surface.Loc.offset;
  (* merge is commutative *)
  let m' = Live_surface.Loc.merge b a in
  Alcotest.(check int) "commutes" m.Live_surface.Loc.stop.Live_surface.Loc.offset
    m'.Live_surface.Loc.stop.Live_surface.Loc.offset

let test_loc_contains_extract () =
  let span = Live_surface.Loc.make (mkpos 1 3 2) (mkpos 1 7 6) in
  Alcotest.(check bool) "inside" true (Live_surface.Loc.contains span ~offset:4);
  Alcotest.(check bool) "start inclusive" true
    (Live_surface.Loc.contains span ~offset:2);
  Alcotest.(check bool) "stop exclusive" false
    (Live_surface.Loc.contains span ~offset:6);
  Alcotest.(check string) "extract" "cdef"
    (Live_surface.Loc.extract "abcdefgh" span);
  (* extraction clamps out-of-range spans instead of raising *)
  let wild = Live_surface.Loc.make (mkpos 1 1 0) (mkpos 9 9 999) in
  Alcotest.(check string) "clamped" "abc" (Live_surface.Loc.extract "abc" wild)

let test_loc_pp () =
  let same_line = Live_surface.Loc.make (mkpos 3 2 10) (mkpos 3 9 17) in
  check_contains "single line" (Live_surface.Loc.to_string same_line) "line 3";
  let multi = Live_surface.Loc.make (mkpos 3 2 10) (mkpos 5 1 30) in
  check_contains "range" (Live_surface.Loc.to_string multi) "lines 3-5"

(* -- Style ------------------------------------------------------------ *)

let vnum' f = Live_core.Ast.VNum f
let vstr' s = Live_core.Ast.VStr s

let test_style_last_write_wins () =
  let st =
    Live_ui.Style.of_box
      [
        Live_core.Boxcontent.Attr ("margin", vnum' 1.0);
        Live_core.Boxcontent.Attr ("margin", vnum' 4.0);
      ]
  in
  Alcotest.(check int) "margin" 4 st.Live_ui.Style.margin

let test_style_clamping () =
  let st =
    Live_ui.Style.of_box
      [
        Live_core.Boxcontent.Attr ("margin", vnum' (-3.0));
        Live_core.Boxcontent.Attr ("fontsize", vnum' 99.0);
        Live_core.Boxcontent.Attr ("direction", vstr' "sideways");
        Live_core.Boxcontent.Attr ("align", vstr' "  CENTER ");
      ]
  in
  Alcotest.(check int) "negative margin clamped" 0 st.Live_ui.Style.margin;
  Alcotest.(check int) "fontsize capped" 4 st.Live_ui.Style.fontsize;
  Alcotest.(check bool) "bad direction ignored" true
    (st.Live_ui.Style.direction = Live_ui.Style.Vertical);
  Alcotest.(check bool) "align parsed case-insensitively" true
    (st.Live_ui.Style.align = Live_ui.Style.Center)

let test_style_zero_width_resets () =
  let st =
    Live_ui.Style.of_box
      [
        Live_core.Boxcontent.Attr ("width", vnum' 10.0);
        Live_core.Boxcontent.Attr ("width", vnum' 0.0);
      ]
  in
  Alcotest.(check bool) "width 0 means auto" true
    (st.Live_ui.Style.width = None)

let test_style_handler_captured () =
  let h = Live_core.Ast.VLam ("_", Live_core.Typ.unit_, Live_core.Ast.eunit) in
  let st =
    Live_ui.Style.of_box [ Live_core.Boxcontent.Attr ("ontap", h) ]
  in
  Alcotest.(check bool) "handler kept" true
    (match st.Live_ui.Style.handler with Some _ -> true | None -> false)

(* -- Ident ------------------------------------------------------------ *)

let test_fresh_names () =
  Live_core.Ident.reset_fresh ();
  let a = Live_core.Ident.fresh "while" in
  let b = Live_core.Ident.fresh "while" in
  Alcotest.(check bool) "distinct" false (String.equal a b);
  Alcotest.(check bool) "marked" true (Live_core.Ident.is_generated a);
  Alcotest.(check bool) "user names unmarked" false
    (Live_core.Ident.is_generated "while_loop");
  (* deterministic after reset *)
  Live_core.Ident.reset_fresh ();
  Alcotest.(check string) "reset restarts the sequence" a
    (Live_core.Ident.fresh "while")

let test_generated_names_unlexable () =
  (* the lexer rejects '$', so user code cannot name-collide with
     generated loop functions *)
  match Live_surface.Lexer.tokenize "$while_1" with
  | exception Live_surface.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "'$' must not lex"

(* -- Geometry ---------------------------------------------------------- *)

let test_geometry () =
  let r = Live_ui.Geometry.make ~x:2 ~y:3 ~w:5 ~h:4 in
  Alcotest.(check bool) "contains corner" true
    (Live_ui.Geometry.contains r ~x:2 ~y:3);
  Alcotest.(check bool) "excludes far edge" false
    (Live_ui.Geometry.contains r ~x:7 ~y:3);
  Alcotest.(check int) "area" 20 (Live_ui.Geometry.area r);
  let i = Live_ui.Geometry.inset r 1 in
  Alcotest.check rect "inset" (Live_ui.Geometry.make ~x:3 ~y:4 ~w:3 ~h:2) i;
  let over = Live_ui.Geometry.inset r 10 in
  Alcotest.(check int) "over-inset collapses" 0 (Live_ui.Geometry.area over);
  let s = Live_ui.Geometry.make ~x:4 ~y:4 ~w:10 ~h:10 in
  Alcotest.check rect "intersection"
    (Live_ui.Geometry.make ~x:4 ~y:4 ~w:3 ~h:3)
    (Live_ui.Geometry.intersect r s);
  let far = Live_ui.Geometry.make ~x:50 ~y:50 ~w:2 ~h:2 in
  Alcotest.(check int) "disjoint intersection is empty" 0
    (Live_ui.Geometry.area (Live_ui.Geometry.intersect r far));
  Alcotest.(check bool) "negative size clamped" true
    (Live_ui.Geometry.make ~x:0 ~y:0 ~w:(-5) ~h:2 = Live_ui.Geometry.make ~x:0 ~y:0 ~w:0 ~h:2)

let suite =
  [
    case "loc: merge" test_loc_merge;
    case "loc: contains and extract" test_loc_contains_extract;
    case "loc: printing" test_loc_pp;
    case "style: last write wins" test_style_last_write_wins;
    case "style: clamping and validation" test_style_clamping;
    case "style: zero width is auto" test_style_zero_width_resets;
    case "style: handlers captured" test_style_handler_captured;
    case "ident: fresh names" test_fresh_names;
    case "ident: generated names cannot be lexed" test_generated_names_unlexable;
    case "geometry" test_geometry;
  ]
