(** The state fix-up of Fig. 12: after UPDATE, "it just deletes
    whatever does not type". *)

open Live_core
open Helpers

let prog_with (defs : Program.def list) = Program.of_defs defs

let g name ty init = Program.Global { name; ty; init }

let page name arg_ty =
  let x = "x" in
  Program.Page
    {
      name;
      arg_ty;
      init = lam x arg_ty Ast.eunit;
      render = lam x arg_ty Ast.eunit;
    }

let test_s_okay () =
  (* a binding that still types survives *)
  let new_code = prog_with [ g "a" Typ.Num (vnum 0.0) ] in
  let store = Store.write "a" (vnum 42.0) Store.empty in
  let store' = Fixup.fixup_store new_code store in
  Alcotest.check value "kept" (vnum 42.0) (Option.get (Store.find "a" store'))

let test_s_skip_deleted_global () =
  (* S-SKIP: g ∉ C' *)
  let new_code = prog_with [ g "b" Typ.Num (vnum 0.0) ] in
  let store = Store.write "a" (vnum 42.0) Store.empty in
  let store' = Fixup.fixup_store new_code store in
  Alcotest.(check int) "dropped" 0 (Store.cardinal store')

let test_s_skip_retyped_global () =
  (* S-SKIP: the declared type changed incompatibly *)
  let new_code = prog_with [ g "a" Typ.Str (vstr "") ] in
  let store = Store.write "a" (vnum 42.0) Store.empty in
  let store' = Fixup.fixup_store new_code store in
  Alcotest.(check int) "dropped" 0 (Store.cardinal store');
  (* ... and the read now falls back to the new initial value
     (EP-GLOBAL-2) *)
  Alcotest.check value "fallback" (vstr "")
    (Option.get (Store.read new_code "a" store'))

let test_s_mixed () =
  let new_code =
    prog_with [ g "keep" Typ.Num (vnum 0.0); g "retype" Typ.Str (vstr "") ]
  in
  let store =
    Store.empty
    |> Store.write "keep" (vnum 1.0)
    |> Store.write "retype" (vnum 2.0)
    |> Store.write "gone" (vnum 3.0)
  in
  let store' = Fixup.fixup_store new_code store in
  Alcotest.(check int) "only one survives" 1 (Store.cardinal store');
  Alcotest.(check bool) "keep survived" true (Store.mem "keep" store')

let test_p_okay_p_skip () =
  let new_code = prog_with [ page "start" Typ.unit_; page "detail" Typ.Num ] in
  let stack =
    [ ("start", Ast.vunit); ("detail", vnum 1.0); ("gone", Ast.vunit) ]
  in
  let stack' = Fixup.fixup_stack new_code stack in
  Alcotest.(check int) "two survive" 2 (List.length stack');
  Alcotest.(check (list string))
    "order preserved" [ "start"; "detail" ] (List.map fst stack')

let test_p_skip_retyped_arg () =
  (* the page still exists but its argument type changed *)
  let new_code = prog_with [ page "detail" Typ.Str ] in
  let stack' = Fixup.fixup_stack new_code [ ("detail", vnum 1.0) ] in
  Alcotest.(check int) "dropped" 0 (List.length stack')

let test_report () =
  let new_code = prog_with [ g "keep" Typ.Num (vnum 0.0); page "start" Typ.unit_ ] in
  let store =
    Store.empty |> Store.write "keep" (vnum 1.0) |> Store.write "lost" (vnum 2.0)
  in
  let stack = [ ("start", Ast.vunit); ("oldpage", Ast.vunit) ] in
  let _, _, report = Fixup.fixup_with_report new_code store stack in
  Alcotest.(check (list string)) "dropped globals" [ "lost" ]
    report.Fixup.dropped_globals;
  Alcotest.(check (list string)) "dropped pages" [ "oldpage" ]
    report.Fixup.dropped_pages

(* the theorem the fix-up exists for: the fixed-up state types under
   the new code *)
let test_fixup_makes_states_type () =
  let new_code =
    prog_with
      [
        g "a" Typ.Num (vnum 0.0);
        g "b" Typ.Str (vstr "");
        page "start" Typ.unit_;
        page "detail" Typ.Num;
      ]
  in
  let store =
    Store.empty
    |> Store.write "a" (vstr "wrong type now")
    |> Store.write "b" (vstr "fine")
    |> Store.write "c" (vnum 1.0)
  in
  let stack = [ ("start", Ast.vunit); ("detail", vstr "wrong") ] in
  let store', stack', _ = Fixup.fixup_with_report new_code store stack in
  (match State_typing.check_store new_code store' with
  | Ok () -> ()
  | Error m -> Alcotest.failf "store does not type after fixup: %s" m);
  match State_typing.check_stack new_code stack' with
  | Ok () -> ()
  | Error m -> Alcotest.failf "stack does not type after fixup: %s" m

let suite =
  [
    case "S-OKAY keeps typed bindings" test_s_okay;
    case "S-SKIP drops deleted globals" test_s_skip_deleted_global;
    case "S-SKIP drops retyped globals; reads fall back" test_s_skip_retyped_global;
    case "mixed store fixup" test_s_mixed;
    case "P-OKAY / P-SKIP" test_p_okay_p_skip;
    case "P-SKIP on retyped page argument" test_p_skip_retyped_arg;
    case "fixup report" test_report;
    case "fixed-up state types under the new code" test_fixup_makes_states_type;
  ]
