(** The big-step evaluator against the rules of Fig. 8: pure
    reduction, stateful steps (ES-ASSIGN/ES-PUSH/ES-POP), render steps
    (ER-POST/ER-ATTR/ER-BOXED), and the dynamic enforcement of the
    effect discipline (wrong-mode effects are stuck, never silently
    executed). *)

open Live_core
open Helpers

let eval_pure ?(prog = Program.empty) ?(store = Store.empty) e =
  Eval.eval_pure prog store e

let test_values_self_evaluate () =
  Alcotest.check value "number" (vnum 3.0) (eval_pure (num 3.0));
  Alcotest.check value "tuple expression"
    (Ast.VTuple [ vnum 1.0; vnum 5.0 ])
    (eval_pure (Ast.Tuple [ num 1.0; add (num 2.0) (num 3.0) ]))

let test_ep_app () =
  (* EP-APP: (\x.e) v -> e[v/x] *)
  let e = Ast.App (lam "x" Typ.Num (add (Ast.Var "x") (Ast.Var "x")), num 4.0) in
  Alcotest.check value "beta" (vnum 8.0) (eval_pure e)

let test_ep_tuple () =
  (* EP-TUPLE: (v1..vm).n -> vn, 1-indexed *)
  let e = Ast.Proj (Ast.Tuple [ num 10.0; num 20.0; num 30.0 ], 2) in
  Alcotest.check value "projection" (vnum 20.0) (eval_pure e)

let test_ep_fun () =
  (* EP-FUN: f -> e when (fun f : tau is e) ∈ C *)
  let prog =
    Program.of_defs
      [
        Program.Func
          {
            name = "double";
            ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
            body = lam "x" Typ.Num (add (Ast.Var "x") (Ast.Var "x"));
          };
      ]
  in
  Alcotest.check value "call" (vnum 14.0)
    (eval_pure ~prog (Ast.App (Ast.Fn "double", num 7.0)))

let test_ep_global_fallback () =
  (* EP-GLOBAL-2: an unassigned global reads its initial value from C *)
  let prog =
    Program.of_defs
      [ Program.Global { name = "g"; ty = Typ.Num; init = vnum 9.0 } ]
  in
  Alcotest.check value "initial value" (vnum 9.0)
    (eval_pure ~prog (Ast.Get "g"));
  (* EP-GLOBAL-1: an assigned global reads the store *)
  Alcotest.check value "assigned value" (vnum 5.0)
    (eval_pure ~prog ~store:(Store.write "g" (vnum 5.0) Store.empty)
       (Ast.Get "g"))

let test_es_assign () =
  let prog =
    Program.of_defs
      [ Program.Global { name = "g"; ty = Typ.Num; init = vnum 0.0 } ]
  in
  let v, store, queue =
    Eval.eval_state prog Store.empty Fqueue.empty
      (Ast.Set ("g", add (num 1.0) (num 2.0)))
  in
  Alcotest.check value "returns unit" Ast.vunit v;
  Alcotest.check value "store updated" (vnum 3.0)
    (Option.get (Store.find "g" store));
  Alcotest.(check bool) "queue untouched" true (Fqueue.is_empty queue)

let test_es_push_pop_enqueue () =
  (* ES-PUSH / ES-POP enqueue events; they do not touch the stack *)
  let _, _, queue =
    Eval.eval_state Program.empty Store.empty Fqueue.empty
      (Ast.App
         ( lam "_" Typ.unit_ (Ast.App (lam "_" Typ.unit_ Ast.eunit, Ast.Pop)),
           Ast.Push ("p", num 1.0) ))
  in
  Alcotest.(check (list Helpers.event))
    "both events, fifo order"
    [ Event.Push ("p", vnum 1.0); Event.Pop ]
    (Fqueue.to_list queue)

let test_er_post_attr () =
  let v, box =
    Eval.eval_render Program.empty Store.empty
      (Ast.App
         ( lam "_" Typ.unit_ (Ast.SetAttr ("margin", num 2.0)),
           Ast.Post (str "hi") ))
  in
  Alcotest.check value "unit" Ast.vunit v;
  Alcotest.check boxcontent "implicit top-level box"
    [ Boxcontent.Leaf (vstr "hi"); Boxcontent.Attr ("margin", vnum 2.0) ]
    box

let test_er_boxed_nesting () =
  (* ER-BOXED evaluates the body against a fresh box and nests it *)
  let e =
    Ast.Boxed
      ( Some (Srcid.of_int 7),
        Ast.App
          ( lam "_" Typ.unit_ (Ast.Boxed (None, Ast.Post (num 1.0))),
            Ast.Post (str "outer") ) )
  in
  let _, box = Eval.eval_render Program.empty Store.empty e in
  Alcotest.check boxcontent "nested structure"
    [
      Boxcontent.Box
        ( Some (Srcid.of_int 7),
          [
            Boxcontent.Leaf (vstr "outer");
            Boxcontent.Box (None, [ Boxcontent.Leaf (vnum 1.0) ]);
          ] );
    ]
    box

let test_er_boxed_value () =
  (* boxed e evaluates to e's value (rule ER-BOXED: E[v]) *)
  let v, _ =
    Eval.eval_render Program.empty Store.empty
      (Ast.Boxed (None, add (num 20.0) (num 22.0)))
  in
  Alcotest.check value "inner value" (vnum 42.0) v

let expect_stuck name f =
  match f () with
  | exception Eval.Stuck _ -> ()
  | _ -> Alcotest.failf "%s: expected stuck" name

let test_effect_violations_stuck () =
  let prog =
    Program.of_defs
      [ Program.Global { name = "g"; ty = Typ.Num; init = vnum 0.0 } ]
  in
  (* render code writing a global *)
  expect_stuck "set in render" (fun () ->
      Eval.eval_render prog Store.empty (Ast.Set ("g", num 1.0)));
  (* state code posting a box *)
  expect_stuck "post in state" (fun () ->
      Eval.eval_state prog Store.empty Fqueue.empty (Ast.Post (num 1.0)));
  (* pure code doing either *)
  expect_stuck "set in pure" (fun () ->
      eval_pure ~prog (Ast.Set ("g", num 1.0)));
  expect_stuck "boxed in pure" (fun () ->
      eval_pure ~prog (Ast.Boxed (None, num 1.0)));
  expect_stuck "push in render" (fun () ->
      Eval.eval_render prog Store.empty (Ast.Push ("p", num 1.0)));
  expect_stuck "pop in pure" (fun () -> eval_pure ~prog Ast.Pop)

let test_stuck_forms () =
  expect_stuck "unbound variable" (fun () -> eval_pure (Ast.Var "x"));
  expect_stuck "apply non-function" (fun () ->
      eval_pure (Ast.App (num 1.0, num 2.0)));
  expect_stuck "project non-tuple" (fun () ->
      eval_pure (Ast.Proj (num 1.0, 1)));
  expect_stuck "projection out of range" (fun () ->
      eval_pure (Ast.Proj (Ast.Tuple [ num 1.0 ], 2)));
  expect_stuck "undefined global" (fun () -> eval_pure (Ast.Get "nope"));
  expect_stuck "undefined function" (fun () ->
      eval_pure (Ast.App (Ast.Fn "nope", num 1.0)))

let test_divergence_fuel () =
  (* fun loop(x) = loop(x): fuel must catch it *)
  let prog =
    Program.of_defs
      [
        Program.Func
          {
            name = "loop";
            ty = Typ.Fn (Typ.Num, Eff.Pure, Typ.Num);
            body = lam "x" Typ.Num (Ast.App (Ast.Fn "loop", Ast.Var "x"));
          };
      ]
  in
  match
    Eval.eval_pure ~fuel:10_000 prog Store.empty
      (Ast.App (Ast.Fn "loop", num 1.0))
  with
  | exception Eval.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_render_cannot_see_queue () =
  (* render evaluation returns no events and leaves no store changes:
     guaranteed by construction, sanity-checked here via cond's thunks *)
  let prog =
    Program.of_defs
      [ Program.Global { name = "g"; ty = Typ.Num; init = vnum 1.0 } ]
  in
  let v, box =
    Eval.eval_render prog
      (Store.write "g" (vnum 5.0) Store.empty)
      (Ast.Post (Ast.Get "g"))
  in
  Alcotest.check value "unit" Ast.vunit v;
  Alcotest.check boxcontent "read through store" [ Boxcontent.Leaf (vnum 5.0) ] box

let suite =
  [
    case "values self-evaluate" test_values_self_evaluate;
    case "EP-APP" test_ep_app;
    case "EP-TUPLE (1-indexed)" test_ep_tuple;
    case "EP-FUN" test_ep_fun;
    case "EP-GLOBAL-1/2" test_ep_global_fallback;
    case "ES-ASSIGN" test_es_assign;
    case "ES-PUSH / ES-POP enqueue" test_es_push_pop_enqueue;
    case "ER-POST / ER-ATTR" test_er_post_attr;
    case "ER-BOXED nests" test_er_boxed_nesting;
    case "ER-BOXED yields the inner value" test_er_boxed_value;
    case "effect violations are stuck" test_effect_violations_stuck;
    case "stuck forms" test_stuck_forms;
    case "divergence is caught by fuel" test_divergence_fuel;
    case "render reads the store, changes nothing" test_render_cannot_see_queue;
  ]
