(** The surface lexer. *)

open Live_surface

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let token = Alcotest.testable (Fmt.of_to_string Token.to_string) Token.equal

let check src expected =
  Alcotest.(check (list token)) src (expected @ [ Token.EOF ]) (toks src)

let test_numbers () =
  check "42" [ Token.NUMBER 42.0 ];
  check "3.14" [ Token.NUMBER 3.14 ];
  check "1e3" [ Token.NUMBER 1000.0 ];
  check "2.5e-2" [ Token.NUMBER 0.025 ];
  (* 1.2.3 lexes as 1.2 then .3 — documented projection caveat *)
  check "0.5" [ Token.NUMBER 0.5 ]

let test_strings () =
  check {|"hello"|} [ Token.STRING "hello" ];
  check {|"a\"b"|} [ Token.STRING {|a"b|} ];
  check {|"line\nbreak"|} [ Token.STRING "line\nbreak" ];
  check {|"tab\there"|} [ Token.STRING "tab\there" ];
  check {|"back\\slash"|} [ Token.STRING {|back\slash|} ];
  check {|""|} [ Token.STRING "" ]

let test_keywords_vs_idents () =
  check "boxed boxer" [ Token.KW_BOXED; Token.IDENT "boxer" ];
  check "if iffy" [ Token.KW_IF; Token.IDENT "iffy" ];
  check "foo_bar2" [ Token.IDENT "foo_bar2" ];
  check "number string" [ Token.KW_NUMBER; Token.KW_STRING ]

let test_operators () =
  check ":= : = ==" [ Token.ASSIGN; Token.COLON; Token.EQ; Token.EQEQ ];
  check "< <= > >= !=" [ Token.LT; Token.LE; Token.GT; Token.GE; Token.NEQ ];
  check "+ ++ - * / %"
    [ Token.PLUS; Token.CONCAT; Token.MINUS; Token.STAR; Token.SLASH;
      Token.PERCENT ];
  (* the paper writes string concatenation as || *)
  check {|"a" || "b"|} [ Token.STRING "a"; Token.CONCAT; Token.STRING "b" ]

let test_comments_and_space () =
  check "1 // comment to eol\n2" [ Token.NUMBER 1.0; Token.NUMBER 2.0 ];
  check "  \t\r\n " [];
  check "a//x\n//y\nb" [ Token.IDENT "a"; Token.IDENT "b" ]

let test_positions () =
  let l = Lexer.tokenize "ab\n  cd" in
  match l with
  | [ a; c; _eof ] ->
      Alcotest.(check int) "a line" 1 a.Lexer.loc.Loc.start.Loc.line;
      Alcotest.(check int) "a col" 1 a.Lexer.loc.Loc.start.Loc.col;
      Alcotest.(check int) "cd line" 2 c.Lexer.loc.Loc.start.Loc.line;
      Alcotest.(check int) "cd col" 3 c.Lexer.loc.Loc.start.Loc.col
  | _ -> Alcotest.fail "expected three tokens"

let expect_error src =
  match Lexer.tokenize src with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected a lex error on %S" src

let test_errors () =
  expect_error {|"unterminated|};
  expect_error {|"bad \q escape"|};
  expect_error "a # b";
  expect_error "a | b";
  expect_error "!"

let suite =
  [
    Helpers.case "numbers" test_numbers;
    Helpers.case "strings and escapes" test_strings;
    Helpers.case "keywords vs identifiers" test_keywords_vs_idents;
    Helpers.case "operators" test_operators;
    Helpers.case "comments and whitespace" test_comments_and_space;
    Helpers.case "line/column tracking" test_positions;
    Helpers.case "lex errors" test_errors;
  ]
