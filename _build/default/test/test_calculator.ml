(** The calculator workload: sibling hit-testing in horizontal rows
    and a handler state machine. *)

open Live_runtime
open Helpers

let calc () = live_of ~width:30 Live_workloads.Calculator.source

(** Press a key by its label: find the bordered cell whose content is
    exactly the label and tap its centre. *)
let press (ls : Live_session.t) (label : string) : unit =
  let lines = String.split_on_char '\n' (Live_session.screenshot ls) in
  let found = ref false in
  List.iteri
    (fun y line ->
      if not !found then begin
        (* cells look like |  7  | — find the label at a cell centre *)
        let n = String.length line in
        let m = String.length label in
        let rec scan x =
          if x + m > n then ()
          else if
            String.sub line x m = label
            && (x = 0 || line.[x - 1] = ' ' || line.[x - 1] = '|')
            && (x + m >= n || line.[x + m] = ' ' || line.[x + m] = '|')
          then begin
            found := true;
            match Live_session.tap ls ~x ~y with
            | Ok Session.Tapped -> ()
            | Ok Session.No_handler ->
                Alcotest.failf "key %S not tappable at (%d,%d)" label x y
            | Error e ->
                Alcotest.failf "tap: %s" (Live_session.error_to_string e)
          end
          else scan (x + 1)
        in
        scan 0
      end)
    lines;
  if not !found then Alcotest.failf "key %S not on screen" label

let display (ls : Live_session.t) : string =
  (* first non-empty screen line is inside the display box *)
  let lines = String.split_on_char '\n' (Live_session.screenshot ls) in
  match
    List.find_map
      (fun l ->
        let t = String.trim l in
        if
          String.length t > 0
          && t.[0] <> '+' && t.[0] <> '|'
        then Some t
        else
          (* display text sits inside a bordered box: strip the pipes *)
          let inner =
            String.to_seq l
            |> Seq.filter (fun c -> c <> '|' && c <> ' ')
            |> String.of_seq
          in
          if inner <> "" && String.for_all (fun c -> c <> '-') inner then
            Some inner
          else None)
      lines
  with
  | Some s -> s
  | None -> Alcotest.fail "no display content"

let test_initial () =
  Alcotest.(check string) "shows 0" "0" (display (calc ()))

let test_digits_accumulate () =
  let ls = calc () in
  press ls "1";
  press ls "2";
  press ls "3";
  Alcotest.(check string) "123" "123" (display ls)

let test_addition () =
  let ls = calc () in
  press ls "7";
  press ls "+";
  press ls "5";
  press ls "=";
  Alcotest.(check string) "12" "12" (display ls)

let test_chained_ops () =
  let ls = calc () in
  (* 2 * 3 - 4 = 2 (left to right) *)
  press ls "2";
  press ls "*";
  press ls "3";
  press ls "-";
  press ls "4";
  press ls "=";
  Alcotest.(check string) "2" "2" (display ls)

let test_clear () =
  let ls = calc () in
  press ls "9";
  press ls "C";
  Alcotest.(check string) "0" "0" (display ls);
  press ls "4";
  press ls "+";
  press ls "4";
  press ls "=";
  Alcotest.(check string) "8 after clear" "8" (display ls)

let test_division () =
  let ls = calc () in
  press ls "9";
  press ls "/";
  press ls "2";
  press ls "=";
  Alcotest.(check string) "4.5" "4.5" (display ls)

let test_live_edit_mid_calculation () =
  (* retheme the calculator in the middle of a pending computation;
     the pending state (acc, op, entry) survives *)
  let ls = calc () in
  press ls "6";
  press ls "*";
  press ls "7";
  let edited =
    replace Live_workloads.Calculator.source "\"dark gray\"" "\"navy\""
  in
  (match Live_session.edit ls edited with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e));
  press ls "=";
  Alcotest.(check string) "42" "42" (display ls)

let suite =
  [
    case "initial display" test_initial;
    case "digits accumulate" test_digits_accumulate;
    case "addition" test_addition;
    case "chained operations" test_chained_ops;
    case "clear" test_clear;
    case "division" test_division;
    case "live edit mid-calculation" test_live_edit_mid_calculation;
  ]
