(** The painter: golden screenshots of small box trees. *)

open Live_core
open Live_ui

let leaf s = Boxcontent.Leaf (Ast.VStr s)
let nattr a f = Boxcontent.Attr (a, Ast.VNum f)
let sattr a s = Boxcontent.Attr (a, Ast.VStr s)
let box items = Boxcontent.Box (None, items)

let golden name tree width expected =
  Alcotest.(check string) name expected (Render.screenshot ~width tree)

let test_text_only () =
  golden "single line" [ leaf "hello" ] 10 "hello\n";
  golden "two leaves stack" [ leaf "a"; leaf "b" ] 10 "a\nb\n"

let test_bordered_box () =
  golden "border" [ box [ nattr "border" 1.0; leaf "hi" ] ] 8
    "+------+\n|hi    |\n+------+\n"

let test_padding () =
  golden "padding"
    [ box [ nattr "border" 1.0; nattr "padding" 1.0; leaf "x" ] ]
    7 "+-----+\n|     |\n| x   |\n|     |\n+-----+\n"

let test_margin () =
  golden "margin"
    [ box [ nattr "margin" 1.0; nattr "border" 1.0; leaf "x" ] ]
    7 "\n +---+\n |x  |\n +---+\n\n"

let test_horizontal () =
  golden "row"
    [
      box
        [
          sattr "direction" "horizontal";
          box [ leaf "ab" ];
          box [ leaf "cd" ];
        ];
    ]
    10 "abcd\n"

let test_align () =
  golden "center" [ box [ sattr "align" "center"; leaf "mid" ] ] 9
    "   mid\n";
  golden "right" [ box [ sattr "align" "right"; leaf "end" ] ] 9
    "      end\n"

let test_fontsize_spacing () =
  golden "double height"
    [ box [ nattr "fontsize" 2.0; leaf "big" ]; box [ leaf "after" ] ]
    10 "big\n\nafter\n"

let test_wrapping () =
  golden "wraps" [ box [ leaf "aa bb cc" ] ] 5 "aa bb\ncc\n"

let test_nested () =
  golden "nested borders"
    [ box [ nattr "border" 1.0; box [ nattr "border" 1.0; leaf "x" ] ] ]
    9 "+-------+\n|+-----+|\n||x    ||\n|+-----+|\n+-------+\n"

let test_background_colors_in_ansi () =
  let tree = [ box [ sattr "background" "light blue"; leaf "row" ] ] in
  let ansi = Render.screenshot_ansi ~width:6 tree in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "light blue bg" true (contains ansi "48;5;117");
  (* the plain-text screenshot is identical modulo color *)
  Alcotest.(check string) "plain text" "row\n" (Render.screenshot ~width:6 tree)

let test_state_screenshot () =
  let st = Helpers.boot (Helpers.counter_core ()) in
  let s = Render.screenshot_state ~width:10 st in
  Alcotest.(check string) "counter shows 0" "0\n" s;
  let st = Live_core.State.invalidate st in
  Alcotest.(check string) "invalid display marker" "<display invalid>\n"
    (Render.screenshot_state st)

let suite =
  [
    Helpers.case "text" test_text_only;
    Helpers.case "borders" test_bordered_box;
    Helpers.case "padding" test_padding;
    Helpers.case "margins" test_margin;
    Helpers.case "horizontal rows" test_horizontal;
    Helpers.case "alignment" test_align;
    Helpers.case "fontsize spacing" test_fontsize_spacing;
    Helpers.case "wrapping" test_wrapping;
    Helpers.case "nesting" test_nested;
    Helpers.case "ANSI colors" test_background_colors_in_ansi;
    Helpers.case "state screenshots" test_state_screenshot;
  ]
