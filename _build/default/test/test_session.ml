(** The interactive session: coordinate taps, back, updates, trace
    recording. *)

open Live_runtime
open Helpers

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_boot_and_screenshot () =
  let s = session_of ~width:20 Live_workloads.Counter.source in
  Alcotest.(check bool) "shows the counter" true
    (contains (Session.screenshot s) "taps: 0")

let test_tap_by_coordinates () =
  let s = session_of ~width:20 Live_workloads.Counter.source in
  (* the bordered counter box occupies the top rows; (2, 1) is inside *)
  (match ok_machine "tap" (Session.tap s ~x:2 ~y:1) with
  | Session.Tapped -> ()
  | Session.No_handler -> Alcotest.fail "expected a handler at (2,1)");
  Alcotest.(check bool) "incremented" true
    (contains (Session.screenshot s) "taps: 1")

let test_tap_missing_handler () =
  let s = session_of ~width:20 Live_workloads.Counter.source in
  (* the trailing caption has no handler *)
  let h = String.split_on_char '\n' (Session.screenshot s) in
  let last_row = List.length h - 2 in
  (match ok_machine "tap" (Session.tap s ~x:0 ~y:last_row) with
  | Session.No_handler -> ()
  | Session.Tapped -> Alcotest.fail "caption is not tappable");
  Alcotest.(check bool) "unchanged" true
    (contains (Session.screenshot s) "taps: 0")

let test_trace_records_everything () =
  let s = session_of ~width:20 Live_workloads.Counter.source in
  ignore (ok_machine "tap" (Session.tap s ~x:2 ~y:1));
  ignore (ok_machine "tap" (Session.tap s ~x:0 ~y:99));
  ok_machine "back" (Session.back s);
  Alcotest.(check int) "three interactions" 3 (Trace.length (Session.trace s));
  match Session.trace s with
  | [ Trace.Tap { x = 2; y = 1 }; Trace.Tap { x = 0; y = 99 }; Trace.Back ] ->
      ()
  | t -> Alcotest.failf "unexpected trace: %a" Trace.pp t

let test_update_reports_fixup () =
  let s = session_of ~width:20 Live_workloads.Counter.source in
  ignore (ok_machine "tap" (Session.tap s ~x:2 ~y:1));
  (* new code drops the counter global *)
  let c2 =
    ok_compile
      "page start()\ninit { }\nrender { boxed { post \"no counter\" } }"
  in
  let report =
    ok_machine "update" (Session.update s c2.Live_surface.Compile.core)
  in
  Alcotest.(check (list string)) "counter dropped" [ "counter" ]
    report.Live_core.Fixup.dropped_globals;
  Alcotest.(check bool) "new view" true
    (contains (Session.screenshot s) "no counter")

let test_navigation_between_pages () =
  let s = session_of ~width:30 (Live_workloads.Synthetic.page_chain ~n:3) in
  Alcotest.(check bool) "page 0" true (contains (Session.screenshot s) "page 0");
  ignore (ok_machine "tap" (Session.tap s ~x:1 ~y:0));
  Alcotest.(check bool) "page 1" true (contains (Session.screenshot s) "page 1");
  ignore (ok_machine "tap" (Session.tap s ~x:1 ~y:0));
  Alcotest.(check bool) "page 2" true (contains (Session.screenshot s) "page 2");
  ok_machine "back" (Session.back s);
  Alcotest.(check bool) "back to 1" true (contains (Session.screenshot s) "page 1");
  match Session.current_page s with
  | Some ("p1", _) -> ()
  | Some (p, _) -> Alcotest.failf "unexpected page %s" p
  | None -> Alcotest.fail "no page"

let test_layout_cached_until_transition () =
  let s = session_of ~width:20 Live_workloads.Counter.source in
  let l1 = Session.layout s in
  let l2 = Session.layout s in
  Alcotest.(check bool) "same layout object" true
    (match (l1, l2) with Some a, Some b -> a == b | _ -> false);
  ignore (ok_machine "tap" (Session.tap s ~x:2 ~y:1));
  let l3 = Session.layout s in
  Alcotest.(check bool) "recomputed after transition" true
    (match (l1, l3) with Some a, Some b -> not (a == b) | _ -> false)

let suite =
  [
    case "boot and screenshot" test_boot_and_screenshot;
    case "tap by coordinates" test_tap_by_coordinates;
    case "taps outside handlers do nothing" test_tap_missing_handler;
    case "trace records all interactions" test_trace_records_everything;
    case "update reports the fixup" test_update_reports_fixup;
    case "page navigation" test_navigation_between_pages;
    case "layout caching per display" test_layout_cached_until_transition;
  ]
