(** The live-programming experience (Sec. 3): live editing with state
    preservation, error recovery, direct manipulation — including the
    paper's three improvements I1-I3 (Sec. 3.1) applied to the running
    mortgage calculator. *)

open Live_runtime
open Helpers

(* naive string replace helper *)
let replace (s : string) (from : string) (into : string) : string =
  let n = String.length s and m = String.length from in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = from then begin
      Buffer.add_string buf into;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let test_live_edit_preserves_model () =
  let ls = live_of ~width:24 Live_workloads.Counter.source in
  ignore (Live_session.tap ls ~x:2 ~y:1);
  ignore (Live_session.tap ls ~x:2 ~y:1);
  check_contains "two taps" (Live_session.screenshot ls) "taps: 2";
  (* edit the label; the count must survive (the init body does NOT
     re-run) *)
  let edited = replace Live_workloads.Counter.source "taps: " "count = " in
  match Live_session.edit ls edited with
  | Ok o ->
      check_contains "new label, old model" o.Live_session.screenshot
        "count = 2"
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e)

let test_bad_edit_keeps_running () =
  (* "the program keeps running while the programmer edits their code"
     — a source that does not compile leaves the old program live *)
  let ls = live_of ~width:24 Live_workloads.Counter.source in
  ignore (Live_session.tap ls ~x:2 ~y:1);
  (match Live_session.edit ls "page start() init { } render { post nope }" with
  | Error (Live_session.Compile_error _) -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Live_session.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a compile error");
  check_contains "still running the old code" (Live_session.screenshot ls)
    "taps: 1";
  Alcotest.(check bool) "error is recorded" true
    (Option.is_some (Live_session.last_error ls));
  (* a subsequent good edit clears it *)
  (match Live_session.edit ls Live_workloads.Counter.source with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e));
  Alcotest.(check bool) "error cleared" true
    (Option.is_none (Live_session.last_error ls))

let test_undo () =
  let ls = live_of ~width:24 Live_workloads.Counter.source in
  let v2 = replace Live_workloads.Counter.source "taps: " "n=" in
  (match Live_session.edit ls v2 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e));
  check_contains "v2 live" (Live_session.screenshot ls) "n=0";
  (match Live_session.undo ls with
  | Some (Ok o) -> check_contains "back to v1" o.Live_session.screenshot "taps: 0"
  | Some (Error e) -> Alcotest.failf "undo: %s" (Live_session.error_to_string e)
  | None -> Alcotest.fail "no history");
  Alcotest.(check bool) "no more history" true (Live_session.undo ls = None)

(* ------------------------------------------------------------------ *)
(* The paper's Sec. 3.1 walkthrough on the mortgage calculator         *)
(* ------------------------------------------------------------------ *)

(** Boot the mortgage app and navigate to the detail page, like the
    programmer in Sec. 2 (steps 4-5 of the conventional cycle). *)
let open_detail_page () =
  let ls = live_of ~width:46 (Live_workloads.Mortgage.source ~listings:4 ()) in
  (* the first listing row sits just below the header *)
  (match Live_session.tap ls ~x:3 ~y:4 with
  | Ok Session.Tapped -> ()
  | Ok Session.No_handler -> Alcotest.fail "no listing at (3,4)"
  | Error e -> Alcotest.failf "tap: %s" (Live_session.error_to_string e));
  check_contains "on the detail page" (Live_session.screenshot ls)
    "monthly payment";
  ls

let test_i1_margin_by_direct_manipulation () =
  let ls = live_of ~width:46 (Live_workloads.Mortgage.source ~listings:4 ()) in
  let before = Live_session.screenshot ls in
  (* I1: select a listing row in the live view and adjust its margin *)
  let sel =
    match Live_session.select_box ls ~x:3 ~y:4 with
    | Some s -> s
    | None -> Alcotest.fail "no box at (3,4)"
  in
  (match
     Direct_manipulation.set_attribute ls ~srcid:sel.Navigation.srcid
       ~attr:"margin" ~value:"1"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "I1: %s" (Direct_manipulation.error_to_string e));
  let after = Live_session.screenshot ls in
  Alcotest.(check bool) "view changed" false (String.equal before after);
  (* the change is enshrined in code *)
  check_contains "code updated" (Live_session.source ls) "box.margin := 1";
  (* and the attribute reads back from the display *)
  let sel2 =
    match Live_session.select_box ls ~x:4 ~y:5 with
    | Some s -> s
    | None -> Alcotest.fail "row lost after I1"
  in
  match
    Direct_manipulation.get_attribute ls ~srcid:sel2.Navigation.srcid
      ~attr:"margin"
  with
  | Some (Live_core.Ast.VNum 1.0) -> ()
  | other ->
      Alcotest.failf "margin readback: %s"
        (match other with
        | Some v -> Live_core.Pretty.value_to_string v
        | None -> "<none>")

let test_i2_dollars_and_cents () =
  let ls = open_detail_page () in
  check_contains "integer balances before the edit"
    (Live_session.screenshot ls) "balance: $";
  (* the paper's exact improvement: floor/round/pad formatting *)
  (match
     Live_session.edit ls
       (Live_workloads.Mortgage.source ~listings:4 ~i2:true ())
   with
  | Ok o ->
      (* the final year amortises to zero: formatted with cents now *)
      check_contains "cents shown" o.Live_session.screenshot "$0.00";
      (* still on the detail page: the page stack survived the edit *)
      check_contains "detail page still open" o.Live_session.screenshot
        "monthly payment"
  | Error e -> Alcotest.failf "I2: %s" (Live_session.error_to_string e))

let test_i3_highlight_every_fifth_row () =
  let ls = open_detail_page () in
  (match
     Live_session.edit ls
       (Live_workloads.Mortgage.source ~listings:4 ~i2:true ~i3:true ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "I3: %s" (Live_session.error_to_string e));
  (* every fifth amortization row now carries the light-blue background
     in its box attributes *)
  let display =
    match Session.display_content (Live_session.session ls) with
    | Some b -> b
    | None -> Alcotest.fail "no display"
  in
  let rec collect_backgrounds (b : Live_core.Boxcontent.t) acc =
    List.fold_left
      (fun acc item ->
        match item with
        | Live_core.Boxcontent.Box (_, inner) ->
            let acc =
              match Live_core.Boxcontent.own_attr "background" inner with
              | Some (Live_core.Ast.VStr s) -> s :: acc
              | _ -> acc
            in
            collect_backgrounds inner acc
        | _ -> acc)
      acc b
  in
  let highlights =
    List.filter
      (fun s -> String.equal s "light blue")
      (collect_backgrounds display [])
  in
  (* 30-year mortgage: years 5, 10, 15, 20, 25, 30 *)
  Alcotest.(check int) "six highlighted rows" 6 (List.length highlights)

let test_term_and_apr_taps_rerender () =
  (* the detail page's interactive boxes: tapping term cycles it, and
     the amortization re-renders from the new model *)
  let ls = open_detail_page () in
  let before = Live_session.screenshot ls in
  check_contains "term 360" before "term: 360 mo";
  (* find the term box: scan for a coordinate whose selection mentions
     term *)
  let found = ref false in
  for y = 0 to 12 do
    if not !found then
      match Live_session.select_box ls ~x:3 ~y with
      | Some sel when contains sel.Navigation.text "term_months" ->
          found := true;
          (match Live_session.tap ls ~x:3 ~y with
          | Ok Session.Tapped -> ()
          | _ -> Alcotest.fail "term box not tappable")
      | _ -> ()
  done;
  Alcotest.(check bool) "term box found" true !found;
  check_contains "term cycled" (Live_session.screenshot ls) "term: 120 mo";
  Alcotest.(check bool) "payment changed" false
    (String.equal before (Live_session.screenshot ls))

let suite =
  [
    case "live edits preserve the model" test_live_edit_preserves_model;
    case "bad edits keep the old program running" test_bad_edit_keeps_running;
    case "undo" test_undo;
    case "I1: margins by direct manipulation" test_i1_margin_by_direct_manipulation;
    case "I2: dollars and cents, live" test_i2_dollars_and_cents;
    case "I3: highlight every fifth row, live" test_i3_highlight_every_fifth_row;
    case "model taps re-render the view" test_term_and_apr_taps_rerender;
  ]
