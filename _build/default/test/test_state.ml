(** The system-state record (Fig. 7) and its small operations. *)

open Live_core
open Helpers

let prog = counter_core ()

let test_initial () =
  let st = State.initial prog in
  Alcotest.(check bool) "display invalid" false (State.display_valid st);
  Alcotest.(check bool) "queue empty" true (Fqueue.is_empty st.State.queue);
  Alcotest.(check int) "stack empty" 0 (List.length st.State.stack);
  Alcotest.(check int) "store empty" 0 (Store.cardinal st.State.store);
  (* the initial state is unstable: STARTUP must fire *)
  Alcotest.(check bool) "unstable" false (State.is_stable st)

let test_stability () =
  let st = State.initial prog in
  let st = State.push_page "start" Ast.vunit st in
  Alcotest.(check bool) "stable with page, empty queue" true
    (State.is_stable st);
  let st = State.enqueue Event.Pop st in
  Alcotest.(check bool) "unstable with pending event" false
    (State.is_stable st)

let test_stack_discipline () =
  let st = State.initial prog in
  Alcotest.(check bool) "empty top" true (State.top_page st = None);
  let st = State.push_page "start" Ast.vunit st in
  let st = State.push_page "detail" (vnum 1.0) st in
  (match State.top_page st with
  | Some ("detail", v) -> Alcotest.check value "argument" (vnum 1.0) v
  | _ -> Alcotest.fail "top should be detail");
  let st = State.pop_page st in
  (match State.top_page st with
  | Some ("start", _) -> ()
  | _ -> Alcotest.fail "pop exposes start");
  (* POP on the empty stack is a no-op (Fig. 9) *)
  let st = State.pop_page st in
  let st = State.pop_page st in
  Alcotest.(check int) "no-op pop" 0 (List.length st.State.stack)

let test_invalidate () =
  let st = boot prog in
  Alcotest.(check bool) "valid after boot" true (State.display_valid st);
  let st = State.invalidate st in
  Alcotest.(check bool) "invalidated" false (State.display_valid st);
  (* idempotent *)
  let st = State.invalidate st in
  Alcotest.(check bool) "still invalid" false (State.display_valid st)

let test_enqueue_order () =
  let st = State.initial prog in
  let st = State.enqueue (Event.Push ("a", Ast.vunit)) st in
  let st = State.enqueue Event.Pop st in
  Alcotest.(check (list event)) "fifo"
    [ Event.Push ("a", Ast.vunit); Event.Pop ]
    (Fqueue.to_list st.State.queue)

let test_pp_smoke () =
  (* the printer renders every component, including the bottom display *)
  let st = State.initial prog in
  let text = Fmt.str "%a" State.pp st in
  check_contains "display marker" text "⊥";
  let st = boot (counter_core ~init_body:(Ast.Set ("n", num 3.0)) ()) in
  let text = Fmt.str "%a" State.pp st in
  check_contains "store shown" text "n -> 3";
  check_contains "stack shown" text "(start, ())"

let suite =
  [
    case "initial state" test_initial;
    case "stability" test_stability;
    case "page stack discipline" test_stack_discipline;
    case "display invalidation" test_invalidate;
    case "event ordering" test_enqueue_order;
    case "printer smoke" test_pp_smoke;
  ]
