(** The surface type-and-effect checker: inference, effect fixpoint,
    and the structural rules that protect the model-view separation at
    the source level. *)

open Helpers

let wrap_render body =
  Printf.sprintf "page start()\ninit { }\nrender {\n%s\n}\n" body

let wrap_init body =
  Printf.sprintf "page start()\ninit {\n%s\n}\nrender { }\n" body

let accepts src = ignore (ok_compile src)

let rejects ?(substring = "") src =
  let msg = compile_error src in
  if substring <> "" then
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains msg substring) then
      Alcotest.failf "error %S does not mention %S" msg substring

let test_inference_var () =
  accepts (wrap_render "var x := 1\npost str(x + 1)");
  accepts (wrap_render "var xs := []\nxs := cons(1, xs)\npost str(len(xs))");
  accepts (wrap_render "var t := (1, \"a\")\npost t.2");
  rejects (wrap_render "var x := 1\nx := \"no\"");
  rejects ~substring:"infer" (wrap_render "var xs := []\npost str(1)")

let test_unknown_names () =
  rejects ~substring:"unknown variable" (wrap_render "post nope");
  rejects ~substring:"unknown function" (wrap_render "nope()");
  rejects ~substring:"unknown page"
    (wrap_render "boxed { on tapped { push nowhere() } }");
  rejects ~substring:"attribute"
    (wrap_render "boxed { box.wibble := 1 }")

let test_effect_rules () =
  (* render cannot write globals *)
  rejects ~substring:"render"
    ("global g : number = 0\n" ^ wrap_render "g := 1");
  (* init cannot build boxes *)
  rejects ~substring:"init" (wrap_init "boxed { }");
  rejects (wrap_init "post 1");
  (* handlers are state code: no boxes inside *)
  rejects (wrap_render "boxed { on tapped { post 1 } }");
  rejects (wrap_render "boxed { on tapped { boxed { } } }");
  (* handlers may write globals and navigate *)
  accepts
    ("global g : number = 0\n"
   ^ wrap_render "boxed { on tapped { g := g + 1\npop } }")

let test_handler_capture_frozen () =
  (* assigning an enclosing render local inside a handler is rejected:
     capture is by value *)
  rejects ~substring:"captured"
    (wrap_render "var x := 1\nboxed { on tapped { x := 2 } }");
  (* the handler's own locals are assignable *)
  accepts
    (wrap_render "boxed { on tapped { var y := 1\ny := y + 1 } }");
  (* reading enclosing locals is fine *)
  accepts
    ("global g : number = 0\n"
   ^ wrap_render "var x := 1\nboxed { on tapped { g := x } }")

let test_effect_fixpoint () =
  (* f calls g; g is stateful; so f is stateful and unusable in render *)
  let src init_body render_body =
    Printf.sprintf
      {|global n : number = 0
fun g_() { n := 1 }
fun f_() { g_() }
page start()
init { %s }
render { %s }
|}
      init_body render_body
  in
  accepts (src "f_()" "");
  rejects (src "" "f_()");
  (* mutual recursion through the fixpoint *)
  accepts
    {|fun even(n : number) : number {
  var r := 1
  if n > 0 { r := odd(n - 1) }
  return r
}
fun odd(n : number) : number {
  var r := 0
  if n > 0 { r := even(n - 1) }
  return r
}
page start()
init { }
render { post str(even(10)) }
|}

let test_mixed_effects_rejected () =
  (* one function both writing state and building boxes *)
  rejects ~substring:"mixes"
    {|global n : number = 0
fun bad() {
  n := 1
  post n
}
page start()
init { }
render { }
|}

let test_return_rules () =
  rejects ~substring:"return"
    "fun f() : number { return 1\npost 2 }\npage start()\ninit { }\nrender { }";
  rejects ~substring:"return"
    (wrap_render "return 1");
  rejects ~substring:"final"
    "fun f() : number { var x := 1 }\npage start()\ninit { }\nrender { }";
  accepts "fun f() : number { return 7 }\npage start()\ninit { }\nrender { post str(f()) }";
  (* return inside a loop body is rejected *)
  rejects
    "fun f() : number { while 1 { return 1 }\nreturn 2 }\npage start()\ninit { }\nrender { }"

let test_global_initialisers () =
  accepts "global g : [(number, string)] = [(1, \"a\")]\npage start()\ninit { }\nrender { }";
  accepts "global g : number = -5\npage start()\ninit { }\nrender { }";
  rejects ~substring:"literal"
    "global g : number = 1 + 2\npage start()\ninit { }\nrender { }";
  rejects "global g : number = \"s\"\npage start()\ninit { }\nrender { }"

let test_start_page_required () =
  rejects ~substring:"start" "global g : number = 0";
  rejects ~substring:"start"
    "page start(x : number) init { } render { }"

let test_duplicates_and_builtins () =
  rejects ~substring:"duplicate"
    "global g : number = 0\nglobal g : number = 1\npage start()\ninit { }\nrender { }";
  rejects ~substring:"builtin"
    "fun floor(x : number) : number { return x }\npage start()\ninit { }\nrender { }";
  rejects ~substring:"builtin" (wrap_render "var floor := 1")

let test_arity_checks () =
  rejects
    "fun f(x : number) { }\npage start()\ninit { f(1, 2) }\nrender { }";
  rejects (wrap_render "post str(floor(1, 2))");
  rejects
    "page start()\ninit { }\nrender { boxed { on tapped { push p2(1, 2) } } }\npage p2(x : number)\ninit { }\nrender { }"

let test_comparison_types () =
  accepts (wrap_render "if \"a\" < \"b\" { post 1 }");
  accepts (wrap_render "if 1 < 2 { post 1 }");
  rejects (wrap_render "if (1, 2) < (3, 4) { post 1 }");
  rejects (wrap_render "if 1 < \"b\" { post 1 }");
  accepts (wrap_render "if (1, \"a\") == (2, \"b\") { post 1 }")

let test_projection_needs_concrete () =
  rejects (wrap_render "var x := []\npost head(x).1")

let suite =
  [
    case "local inference" test_inference_var;
    case "unknown names" test_unknown_names;
    case "effect discipline at the source" test_effect_rules;
    case "handler capture is by value" test_handler_capture_frozen;
    case "effect fixpoint over the call graph" test_effect_fixpoint;
    case "state+render mix rejected" test_mixed_effects_rejected;
    case "return placement" test_return_rules;
    case "global initialisers are literals" test_global_initialisers;
    case "start page requirements" test_start_page_required;
    case "duplicates and builtin shadowing" test_duplicates_and_builtins;
    case "arity checks" test_arity_checks;
    case "comparison operand types" test_comparison_types;
    case "ambiguous projection rejected" test_projection_needs_concrete;
  ]
