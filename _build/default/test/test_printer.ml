(** The source printer: [parse (print p)] must equal [p] up to
    locations and node ids — the property direct manipulation relies
    on to write code back without corrupting the program. *)

open Live_surface

(* structural program equality, ignoring locations and ids *)
let rec same_expr (a : Sast.expr) (b : Sast.expr) =
  match (a.desc, b.desc) with
  | Sast.Num x, Sast.Num y -> Float.equal x y
  | Sast.Str x, Sast.Str y -> String.equal x y
  | Sast.Bool x, Sast.Bool y -> x = y
  | Sast.Ref x, Sast.Ref y -> String.equal x y
  | Sast.TupleE xs, Sast.TupleE ys | Sast.ListE xs, Sast.ListE ys ->
      List.length xs = List.length ys && List.for_all2 same_expr xs ys
  | Sast.ProjE (x, n), Sast.ProjE (y, m) -> n = m && same_expr x y
  | Sast.Call (f, xs), Sast.Call (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 same_expr xs ys
  | Sast.Binop (o1, a1, b1), Sast.Binop (o2, a2, b2) ->
      o1 = o2 && same_expr a1 a2 && same_expr b1 b2
  | Sast.Unop (o1, a1), Sast.Unop (o2, a2) -> o1 = o2 && same_expr a1 a2
  | _ -> false

let rec same_stmt (a : Sast.stmt) (b : Sast.stmt) =
  match (a.sdesc, b.sdesc) with
  | Sast.SVar (x, e), Sast.SVar (y, f) -> x = y && same_expr e f
  | Sast.SAssign (x, e), Sast.SAssign (y, f) -> x = y && same_expr e f
  | Sast.SAttr (x, e), Sast.SAttr (y, f) -> x = y && same_expr e f
  | Sast.SIf (c1, t1, e1), Sast.SIf (c2, t2, e2) ->
      same_expr c1 c2 && same_block t1 t2 && same_block e1 e2
  | Sast.SWhile (c1, b1), Sast.SWhile (c2, b2) ->
      same_expr c1 c2 && same_block b1 b2
  | Sast.SForeach (x1, e1, b1), Sast.SForeach (x2, e2, b2) ->
      x1 = x2 && same_expr e1 e2 && same_block b1 b2
  | Sast.SFor (x1, a1, c1, b1), Sast.SFor (x2, a2, c2, b2) ->
      x1 = x2 && same_expr a1 a2 && same_expr c1 c2 && same_block b1 b2
  | Sast.SBoxed b1, Sast.SBoxed b2 -> same_block b1 b2
  | Sast.SPost e, Sast.SPost f -> same_expr e f
  | Sast.SOn (x, b1), Sast.SOn (y, b2) -> x = y && same_block b1 b2
  | Sast.SPush (p1, a1), Sast.SPush (p2, a2) ->
      p1 = p2 && List.length a1 = List.length a2 && List.for_all2 same_expr a1 a2
  | Sast.SPop, Sast.SPop -> true
  | Sast.SReturn e, Sast.SReturn f -> same_expr e f
  | Sast.SExpr e, Sast.SExpr f -> same_expr e f
  | _ -> false

and same_block a b =
  List.length a = List.length b && List.for_all2 same_stmt a b

let same_decl (a : Sast.decl) (b : Sast.decl) =
  match (a, b) with
  | Sast.DGlobal g1, Sast.DGlobal g2 ->
      g1.name = g2.name
      && Sast.ty_equal g1.gty g2.gty
      && same_expr g1.init g2.init
  | Sast.DFun f1, Sast.DFun f2 ->
      f1.name = f2.name
      && List.length f1.params = List.length f2.params
      && List.for_all2
           (fun (x, t) (y, u) -> x = y && Sast.ty_equal t u)
           f1.params f2.params
      && Option.equal Sast.ty_equal f1.ret f2.ret
      && same_block f1.body f2.body
  | Sast.DPage p1, Sast.DPage p2 ->
      p1.name = p2.name
      && List.length p1.params = List.length p2.params
      && List.for_all2
           (fun (x, t) (y, u) -> x = y && Sast.ty_equal t u)
           p1.params p2.params
      && same_block p1.pinit p2.pinit
      && same_block p1.prender p2.prender
  | _ -> false

let same_program (a : Sast.program) (b : Sast.program) =
  List.length a.decls = List.length b.decls
  && List.for_all2 same_decl a.decls b.decls

let roundtrip name src =
  let p = Parser.parse_program src in
  let printed = Printer.program_to_string p in
  let p' =
    try Parser.parse_program printed
    with Parser.Error (m, _) | Lexer.Error (m, _) ->
      Alcotest.failf "%s: printed source does not re-parse (%s):\n%s" name m
        printed
  in
  if not (same_program p p') then
    Alcotest.failf "%s: round-trip changed the program:\n%s" name printed

let test_roundtrip_workloads () =
  roundtrip "mortgage" (Live_workloads.Mortgage.source ());
  roundtrip "mortgage i1 i2 i3"
    (Live_workloads.Mortgage.source ~i1:true ~i2:true ~i3:true ());
  roundtrip "counter" Live_workloads.Counter.source;
  roundtrip "todo" Live_workloads.Todo.source;
  roundtrip "gallery" Live_workloads.Gallery.source;
  roundtrip "flat" (Live_workloads.Synthetic.flat_rows ~n:3);
  roundtrip "nested" (Live_workloads.Synthetic.nested ~depth:2 ~fanout:2);
  roundtrip "chain" (Live_workloads.Synthetic.page_chain ~n:3)

let test_roundtrip_twice_is_fixpoint () =
  (* print . parse . print = print: formatting is canonical *)
  let src = Live_workloads.Mortgage.source ~i3:true () in
  let once = Printer.program_to_string (Parser.parse_program src) in
  let twice = Printer.program_to_string (Parser.parse_program once) in
  Alcotest.(check string) "fixpoint" once twice

let test_expr_parens () =
  let rt s = Printer.expr_str (Parser.parse_expr_string s) in
  Alcotest.(check string) "precedence kept" "1 + 2 * 3" (rt "1 + 2 * 3");
  Alcotest.(check string) "parens kept when needed" "(1 + 2) * 3"
    (rt "(1 + 2) * 3");
  Alcotest.(check string) "redundant parens dropped" "1 + 2" (rt "(1) + (2)");
  Alcotest.(check string) "unary minus" "-x" (rt "-x");
  Alcotest.(check string) "not binds loosely, parens unneeded" "not a == b"
    (rt "not a == b");
  Alcotest.(check string) "not around and needs parens" "not (a and b)"
    (rt "not (a and b)");
  Alcotest.(check string) "string escapes" {|"a\"b\n"|} (rt {|"a\"b\n"|})

let test_edge_cases () =
  roundtrip "empty bodies" "page start() init { } render { }";
  roundtrip "else-if chain"
    {|page start() init { } render {
  if 1 { post 1 } else if 2 { post 2 } else { post 3 }
}|};
  roundtrip "negative literal global" "global g : number = -3\npage start() init { } render { }";
  roundtrip "nested lists"
    "global g : [[number]] = [[1], [2, 3]]\npage start() init { } render { }"

let suite =
  [
    Helpers.case "round-trip on all workloads" test_roundtrip_workloads;
    Helpers.case "printing is canonical" test_roundtrip_twice_is_fixpoint;
    Helpers.case "expression parenthesisation" test_expr_parens;
    Helpers.case "edge cases" test_edge_cases;
  ]
