test/test_properties.ml: Ast Boxcontent Float Helpers List Live_core Live_surface Live_ui Machine Pretty Printf Program QCheck2 State State_typing String Typ
