test/test_lexer.ml: Alcotest Fmt Helpers Lexer List Live_surface Loc Token
