test/test_incremental.ml: Alcotest Helpers List Live_runtime Live_workloads Option Printf Session
