test/test_live.ml: Alcotest Buffer Direct_manipulation Helpers List Live_core Live_runtime Live_session Live_workloads Navigation Option Session String
