test/test_typecheck.ml: Alcotest Ast Eff Helpers Live_core Program Typ Typecheck
