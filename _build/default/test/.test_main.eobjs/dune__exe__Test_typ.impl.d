test/test_typ.ml: Alcotest Eff Helpers Live_core QCheck2 Typ
