test/test_ast.ml: Alcotest Ast Helpers Live_core QCheck2 Subst Typ
