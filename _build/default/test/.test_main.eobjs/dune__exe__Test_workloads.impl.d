test/test_workloads.ml: Alcotest Helpers List Live_runtime Live_session Live_workloads Session String
