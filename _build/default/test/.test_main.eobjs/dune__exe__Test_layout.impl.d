test/test_layout.ml: Alcotest Ast Boxcontent Geometry Helpers Layout List Live_core Live_ui Option Printf Srcid Typ
