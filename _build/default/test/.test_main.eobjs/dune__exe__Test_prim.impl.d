test/test_prim.ml: Alcotest Ast Eff Eval Float Helpers List Live_core Prim Program QCheck2 Store Typ
