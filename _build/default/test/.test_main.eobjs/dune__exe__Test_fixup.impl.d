test/test_fixup.ml: Alcotest Ast Fixup Helpers List Live_core Option Program State_typing Store Typ
