test/test_state.ml: Alcotest Ast Event Fmt Fqueue Helpers List Live_core State Store
