test/test_eff.ml: Alcotest Eff Fmt Helpers List Live_core QCheck2
