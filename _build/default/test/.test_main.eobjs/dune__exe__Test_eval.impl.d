test/test_eval.ml: Alcotest Ast Boxcontent Eff Eval Event Fqueue Helpers Live_core Option Program Srcid Store Typ
