test/test_navigation.ml: Alcotest Helpers List Live_core Live_runtime Live_session Live_surface Live_ui Navigation
