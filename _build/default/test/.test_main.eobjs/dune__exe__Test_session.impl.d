test/test_session.ml: Alcotest Helpers List Live_core Live_runtime Live_surface Live_workloads Session String Trace
