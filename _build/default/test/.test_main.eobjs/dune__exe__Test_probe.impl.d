test/test_probe.ml: Alcotest Helpers List Live_core Live_runtime Live_session Probe
