test/test_fqueue.ml: Alcotest Fqueue Helpers List Live_core Option QCheck2
