test/test_metatheory.ml: Array Ast Eff Eval Fqueue Helpers List Live_core Machine Option Pretty Program QCheck2 Result Srcid State State_typing Store Typ Typecheck
