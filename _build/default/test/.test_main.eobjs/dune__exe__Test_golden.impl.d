test/test_golden.ml: Alcotest Helpers Live_runtime Live_session Live_workloads Session String
