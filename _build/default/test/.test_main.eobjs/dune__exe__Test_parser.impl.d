test/test_parser.ml: Alcotest Float Fmt Helpers Int Lexer List Live_surface Live_workloads Loc Parser Sast String
