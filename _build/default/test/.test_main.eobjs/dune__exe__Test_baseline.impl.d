test/test_baseline.ml: Alcotest Helpers Live_baseline Live_runtime Live_session Live_workloads Printf
