test/test_framebuffer.ml: Alcotest Color Framebuffer Geometry Helpers Live_ui String
