test/test_misc.ml: Alcotest Helpers Live_core Live_surface Live_ui String
