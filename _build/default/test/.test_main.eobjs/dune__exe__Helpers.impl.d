test/helpers.ml: Alcotest Ast Boxcontent Buffer Eff Event Live_core Live_runtime Live_surface Live_ui Machine Pretty Program QCheck2 QCheck_alcotest Srcid State Store String Typ
