test/test_printer.ml: Alcotest Float Helpers Lexer List Live_surface Live_workloads Option Parser Printer Sast String
