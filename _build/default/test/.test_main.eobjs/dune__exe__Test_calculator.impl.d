test/test_calculator.ml: Alcotest Helpers List Live_runtime Live_session Live_workloads Seq Session String
