test/test_smallstep.ml: Alcotest Ast Boxcontent Eff Eval Float Fqueue Helpers List Live_core Option Program QCheck2 Srcid Store Typ
