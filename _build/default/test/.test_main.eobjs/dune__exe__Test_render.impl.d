test/test_render.ml: Alcotest Ast Boxcontent Helpers Live_core Live_ui Render String
