test/test_stepper.ml: Alcotest Ast Eff Fmt Helpers List Live_core Live_runtime Live_workloads Option Program Store Typ
