test/test_build.ml: Alcotest Ast Build Eff Eval Helpers List Live_core Machine Program Store Typ
