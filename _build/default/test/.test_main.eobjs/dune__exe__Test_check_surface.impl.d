test/test_check_surface.ml: Alcotest Helpers Printf String
