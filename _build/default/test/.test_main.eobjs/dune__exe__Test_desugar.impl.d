test/test_desugar.ml: Alcotest Ast Boxcontent Helpers List Live_core Live_surface Live_workloads Machine Printf Program State_typing
