test/test_mortgage.ml: Alcotest Helpers List Live_core Live_runtime Live_session Live_workloads Printf Session String
