test/test_machine.ml: Alcotest Ast Boxcontent Eff Event Fqueue Helpers List Live_core Machine Program Srcid State State_typing Store Typ
