test/test_fuzz.ml: Array Helpers List Live_baseline Live_core Live_runtime Live_session Live_surface Live_ui Live_workloads QCheck2 Result Session String
