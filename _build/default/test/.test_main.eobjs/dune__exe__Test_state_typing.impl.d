test/test_state_typing.ml: Alcotest Ast Boxcontent Eff Event Fqueue Helpers Live_core Program State State_typing Store Typ
