(** The mortgage calculator (Figs. 1, 3, 4, 5): golden screenshots of
    both pages and the payment mathematics. *)

open Live_runtime
open Helpers

let boot_app ?(listings = 3) ?(width = 44) ?i1 ?i2 ?i3 () =
  live_of ~width (Live_workloads.Mortgage.source ~listings ?i1 ?i2 ?i3 ())

let test_start_page_contents () =
  (* Fig. 1, left: a header and one row per listing *)
  let ls = boot_app () in
  let shot = Live_session.screenshot ls in
  check_contains "header" shot "House Listings for Sale";
  check_contains "an address" shot "Maple St";
  check_contains "a price" shot "$";
  check_contains "a city" shot "Seattle";
  (* three bordered listing rows *)
  let borders =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = '+')
      (String.split_on_char '\n' shot)
  in
  Alcotest.(check int) "3 rows, 2 border lines each" 6 (List.length borders)

let test_listing_count_scales () =
  let count_rows n =
    let ls = boot_app ~listings:n () in
    match Session.display_content (Live_session.session ls) with
    | Some b -> (
        match Live_core.Boxcontent.children b with
        | [ _header; (_, rows) ] ->
            List.length (Live_core.Boxcontent.children rows)
        | _ -> Alcotest.fail "unexpected page structure")
    | None -> Alcotest.fail "no display"
  in
  Alcotest.(check int) "3 listings" 3 (count_rows 3);
  Alcotest.(check int) "12 listings" 12 (count_rows 12);
  Alcotest.(check int) "60 listings" 60 (count_rows 60)

let test_detail_page_contents () =
  (* Fig. 1, right: price, term/apr controls, monthly payment, and the
     amortization schedule *)
  let ls = boot_app () in
  (match Live_session.tap ls ~x:3 ~y:4 with
  | Ok Session.Tapped -> ()
  | _ -> Alcotest.fail "listing tap failed");
  let shot = Live_session.screenshot ls in
  check_contains "price" shot "price: $";
  check_contains "term control" shot "term: 360 mo";
  check_contains "apr control" shot "apr: 4.50%";
  check_contains "payment" shot "monthly payment: $";
  check_contains "first year" shot "year 1";
  check_contains "last year" shot "year 30";
  (* a 30-year mortgage fully amortises *)
  check_contains "final balance zero" shot "balance: $0"

let test_payment_math () =
  (* the standard annuity formula, checked against a known value:
     $310,000 at 4.5% over 360 months = $1,570.72/month *)
  let src =
    {|page start()
init { }
render { post fixed(pay(310000, 4.5, 360), 2) }
fun pay(principal : number, rate : number, months : number) : number {
  var r := rate / 1200
  var m := principal / months
  if r > 0 {
    m := principal * r / (1 - pow(1 + r, 0 - months))
  }
  return m
}
|}
  in
  let s = session_of ~width:20 src in
  Alcotest.(check string) "annuity" "1570.72\n" (Session.screenshot s)

let test_zero_rate_payment () =
  (* at 0% APR the payment is principal/months — the r > 0 guard *)
  let src =
    Printf.sprintf
      "page start()\ninit { }\nrender { post fixed(%s, 2) }\n%s"
      "pay(12000, 0, 120)"
      {|fun pay(principal : number, rate : number, months : number) : number {
  var r := rate / 1200
  var m := principal / months
  if r > 0 {
    m := principal * r / (1 - pow(1 + r, 0 - months))
  }
  return m
}|}
  in
  let s = session_of ~width:20 src in
  Alcotest.(check string) "zero rate" "100.00\n" (Session.screenshot s)

let test_amortization_monotone () =
  (* balances decrease year over year *)
  let ls = boot_app () in
  ignore (Live_session.tap ls ~x:3 ~y:4);
  let shot = Live_session.screenshot ls in
  let balances =
    String.split_on_char '\n' shot
    |> List.filter_map (fun line ->
           match String.index_opt line '$' with
           | Some i when contains line "balance" ->
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
           | _ -> None)
  in
  Alcotest.(check int) "30 rows" 30 (List.length balances);
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing balances)

let test_deterministic_listings () =
  (* the simulated web download is deterministic: two boots agree *)
  let a = Live_session.screenshot (boot_app ()) in
  let b = Live_session.screenshot (boot_app ()) in
  Alcotest.(check string) "same screenshot" a b

let test_back_returns_to_listings () =
  let ls = boot_app () in
  let start_shot = Live_session.screenshot ls in
  ignore (Live_session.tap ls ~x:3 ~y:4);
  (match Live_session.back ls with
  | Ok () -> ()
  | Error e -> Alcotest.failf "back: %s" (Live_session.error_to_string e));
  Alcotest.(check string) "identical start page" start_shot
    (Live_session.screenshot ls)

let test_i1_margins_change_layout () =
  let plain = Live_session.screenshot (boot_app ()) in
  let roomy = Live_session.screenshot (boot_app ~i1:true ()) in
  Alcotest.(check bool) "margins visible" false (String.equal plain roomy);
  Alcotest.(check bool) "taller" true
    (List.length (String.split_on_char '\n' roomy)
    > List.length (String.split_on_char '\n' plain))

let suite =
  [
    case "Fig. 1 left: start page" test_start_page_contents;
    case "listing count scales" test_listing_count_scales;
    case "Fig. 1 right: detail page" test_detail_page_contents;
    case "annuity payment formula" test_payment_math;
    case "zero-rate guard" test_zero_rate_payment;
    case "amortization balances decrease" test_amortization_monotone;
    case "simulated download is deterministic" test_deterministic_listings;
    case "back returns to identical listings" test_back_returns_to_listings;
    case "I1 margins change the layout" test_i1_margins_change_layout;
  ]
