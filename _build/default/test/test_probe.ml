(** The probe facility (Sec. 5 future work, implemented): debugging
    output from batch code against live state, side-effect-free. *)

open Live_runtime
open Helpers

let probe_src =
  {|global base : number = 10

fun double(x : number) : number {
  return x * 2
}

fun bars(n : number) {
  for i from 0 to n {
    boxed {
      post repeat("#", i + 1)
    }
  }
}

fun poke() {
  base := 0
}

page start()
init {
  base := 21
}
render {
  boxed { post "base: " ++ str(base) }
}
|}

let ok = function
  | Ok (r : Probe.result_) -> r
  | Error e -> Alcotest.failf "probe: %s" (Probe.error_to_string e)

let test_probe_pure_function () =
  let ls = live_of ~width:30 probe_src in
  let r =
    ok
      (Probe.probe_call (Live_session.session ls) ~func:"double"
         ~arg:(vnum 21.0))
  in
  Alcotest.check value "value" (vnum 42.0) r.Probe.value;
  check_contains "shown" r.Probe.screenshot "42"

let test_probe_sees_live_state () =
  (* the probe reads the session's current globals, not initial values *)
  let ls = live_of ~width:30 probe_src in
  let r = ok (Probe.probe_source ls "base + 1") in
  Alcotest.check value "init ran: base = 21" (vnum 22.0) r.Probe.value

let test_probe_render_function () =
  (* a render-effect function probes as the boxes it builds — the
     paper's "debugging output in batch computations" *)
  let ls = live_of ~width:30 probe_src in
  let r = ok (Probe.probe_source ls "bars(3)") in
  check_contains "bar 1" r.Probe.screenshot "#";
  check_contains "bar 3" r.Probe.screenshot "###";
  Alcotest.(check int) "three boxes" 3
    (List.length (Live_core.Boxcontent.children r.Probe.boxes))

let test_probe_rejects_state_code () =
  let ls = live_of ~width:30 probe_src in
  (match Probe.probe_source ls "poke()" with
  | Error (Probe.Bad_argument _) | Error (Probe.Wrong_effect _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Probe.error_to_string e)
  | Ok _ -> Alcotest.fail "state code must not be probeable");
  (* the model is untouched *)
  check_contains "unharmed" (Live_session.screenshot ls) "base: 21"

let test_probe_is_side_effect_free () =
  let ls = live_of ~width:30 probe_src in
  let before = Live_session.screenshot ls in
  ignore (ok (Probe.probe_source ls "bars(5)"));
  ignore (ok (Probe.probe_source ls "double(base)"));
  Alcotest.(check string) "session unchanged" before
    (Live_session.screenshot ls)

let test_probe_bad_input () =
  let ls = live_of ~width:30 probe_src in
  (match Probe.probe_source ls "nonsense(" with
  | Error (Probe.Bad_argument _) -> ()
  | _ -> Alcotest.fail "syntax errors reported");
  match
    Probe.probe_call (Live_session.session ls) ~func:"nope"
      ~arg:Live_core.Ast.vunit
  with
  | Error (Probe.Unknown_function _) -> ()
  | _ -> Alcotest.fail "unknown function reported"

let test_probe_stuck_reported () =
  let ls = live_of ~width:30 probe_src in
  match Probe.probe_source ls "head(drop([1], 1))" with
  | Error (Probe.Probe_failed _) -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Probe.error_to_string e)
  | Ok _ -> Alcotest.fail "head of empty list should fail the probe"

let suite =
  [
    case "pure functions probe as values" test_probe_pure_function;
    case "probes see live model state" test_probe_sees_live_state;
    case "render functions probe as boxes" test_probe_render_function;
    case "state code rejected" test_probe_rejects_state_code;
    case "probing is side-effect-free" test_probe_is_side_effect_free;
    case "bad input reported" test_probe_bad_input;
    case "runtime failures reported" test_probe_stuck_reported;
  ]
