(** The restart baseline (the conventional edit-compile-run cycle of
    Sec. 2) and the retained-mode comparator — demonstrating exactly
    the problems the paper's design removes. *)

open Live_runtime
open Helpers

let counter_core () = (ok_compile Live_workloads.Counter.source).core

let restart_of ?(width = 24) (src : string) : Live_baseline.Restart_runtime.t =
  match
    Live_baseline.Restart_runtime.create ~width (ok_compile src).core
  with
  | Ok t -> t
  | Error e ->
      Alcotest.failf "restart runtime: %s"
        (Live_baseline.Restart_runtime.error_to_string e)

let ok_restart what r =
  match r with
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: %s" what
        (Live_baseline.Restart_runtime.error_to_string e)

let test_restart_loses_state () =
  (* the defining failure of the conventional cycle: the same edit that
     live programming absorbs resets the model on restart *)
  let t = restart_of Live_workloads.Counter.source in
  ignore (ok_restart "tap" (Live_baseline.Restart_runtime.tap t ~x:2 ~y:1));
  ignore (ok_restart "tap" (Live_baseline.Restart_runtime.tap t ~x:2 ~y:1));
  check_contains "two taps" (Live_baseline.Restart_runtime.screenshot t)
    "taps: 2";
  let outcome =
    ok_restart "update"
      (Live_baseline.Restart_runtime.update t (counter_core ()))
  in
  (* the trace was replayed, so the counter is 2 again — but only
     because the taps were re-executed from scratch *)
  Alcotest.(check int) "replayed both taps" 2 outcome.Live_baseline.Restart_runtime.replayed;
  check_contains "state rebuilt by replay"
    (Live_baseline.Restart_runtime.screenshot t) "taps: 2"

let test_restart_replay_diverges_on_layout_change () =
  (* the paper's trace-re-execution problem (Sec. 1): "code changes can
     cause the re-execution to diverge from the previous trace" — a
     layout change moves the button out from under the recorded tap *)
  let t = restart_of Live_workloads.Counter.source in
  ignore (ok_restart "tap" (Live_baseline.Restart_runtime.tap t ~x:2 ~y:1));
  (* new version: a tall banner pushes the counter box down *)
  let moved =
    {|global counter : number = 0
page start()
init { counter := 0 }
render {
  boxed { post "banner line 1" }
  boxed { post "banner line 2" }
  boxed {
    box.border := 1
    post "taps: " ++ str(counter)
    on tapped { counter := counter + 1 }
  }
}
|}
  in
  let outcome =
    ok_restart "update"
      (Live_baseline.Restart_runtime.update t (ok_compile moved).core)
  in
  Alcotest.(check int) "the tap missed" 1
    outcome.Live_baseline.Restart_runtime.missed_taps;
  check_contains "state lost" (Live_baseline.Restart_runtime.screenshot t)
    "taps: 0"

let test_live_absorbs_the_same_change () =
  (* the same scenario through the live runtime: no loss, no replay *)
  let ls = live_of ~width:24 Live_workloads.Counter.source in
  ignore (Live_session.tap ls ~x:2 ~y:1);
  let moved =
    {|global counter : number = 0
page start()
init { counter := 0 }
render {
  boxed { post "banner line 1" }
  boxed { post "banner line 2" }
  boxed {
    box.border := 1
    post "taps: " ++ str(counter)
    on tapped { counter := counter + 1 }
  }
}
|}
  in
  match Live_session.edit ls moved with
  | Ok o ->
      check_contains "state preserved without replay"
        o.Live_session.screenshot "taps: 1"
  | Error e -> Alcotest.failf "edit: %s" (Live_session.error_to_string e)

let test_restart_reruns_init () =
  (* init bodies re-run on restart: the gallery's visit counter ticks *)
  let t = restart_of ~width:46 Live_workloads.Gallery.source in
  check_contains "visit 1" (Live_baseline.Restart_runtime.screenshot t)
    "visit 1";
  ignore
    (ok_restart "update"
       (Live_baseline.Restart_runtime.update t
          (ok_compile Live_workloads.Gallery.source).core));
  (* a fresh store starts at 0, init increments to 1 — but the point is
     the *work* was redone; the counter itself restarts *)
  check_contains "init re-ran from scratch"
    (Live_baseline.Restart_runtime.screenshot t) "visit 1"

(* -- retained-mode comparator --------------------------------------- *)

let test_retained_staleness () =
  (* Sec. 2: in a retained UI, "changing the code that initially builds
     this widget tree is meaningless as that code has already executed"
     — the widget keeps showing the old model until someone writes
     update code *)
  let open Live_baseline.Retained in
  let model = ref 0 in
  let label = make ~text:(Printf.sprintf "count: %d" !model) () in
  let root = make ~children:[ label ] () in
  check_contains "initial" (render root) "count: 0";
  (* the model changes; the retained view is now stale *)
  model := 5;
  check_contains "stale view" (render root) "count: 0";
  (* the programmer must hand-write the view update (the view-update
     problem the paper cites) *)
  set_text label (Printf.sprintf "count: %d" !model);
  check_contains "manually refreshed" (render root) "count: 5"

let test_retained_dirty_tracking () =
  let open Live_baseline.Retained in
  let a = make ~text:"a" () in
  let b = make ~text:"b" () in
  let root = make ~children:[ a; b ] () in
  clean root;
  Alcotest.(check int) "all clean" 0 (dirty_count root);
  set_text a "a2";
  Alcotest.(check int) "one dirty" 1 (dirty_count root);
  add_child root (make ~text:"c" ());
  Alcotest.(check int) "parent and the new child dirty" 3 (dirty_count root)

let test_retained_renders_via_same_painter () =
  let open Live_baseline.Retained in
  let w =
    make ~border:true
      ~children:[ make ~text:"inner" () ]
      ()
  in
  let shot = render ~width:10 w in
  check_contains "border" shot "+--------+";
  check_contains "content" shot "inner"

let suite =
  [
    case "restart replays the trace to rebuild state" test_restart_loses_state;
    case "replay diverges when the layout changes" test_restart_replay_diverges_on_layout_change;
    case "live absorbs the same change" test_live_absorbs_the_same_change;
    case "restart re-runs init bodies" test_restart_reruns_init;
    case "retained views go stale" test_retained_staleness;
    case "retained dirty tracking" test_retained_dirty_tracking;
    case "retained renders via the same painter" test_retained_renders_via_same_painter;
  ]
