(** The system step relation [->g] (Fig. 9), rule by rule, plus the
    liveness loop of Sec. 4.2. *)

open Live_core
open Helpers

let test_startup () =
  (* (STARTUP): (C, D, S, eps, eps) enqueues [push start ()] *)
  let st = State.initial (counter_core ()) in
  let st' = ok_machine "startup" (Machine.startup st) in
  Alcotest.(check (list event))
    "queued" [ Event.Push ("start", Ast.vunit) ]
    (Fqueue.to_list st'.State.queue);
  Alcotest.(check bool) "display invalidated" false (State.display_valid st');
  (* not enabled when the stack is non-empty *)
  let busy = State.push_page "start" Ast.vunit st in
  match Machine.startup busy with
  | Error (Machine.Not_enabled _) -> ()
  | _ -> Alcotest.fail "STARTUP requires an empty stack"

let test_boot_runs_init_then_renders () =
  let init_body = Ast.Set ("n", num 41.0) in
  let st = boot (counter_core ~init_body ()) in
  Alcotest.(check bool) "stable" true (State.is_stable st);
  Alcotest.(check bool) "display valid" true (State.display_valid st);
  Alcotest.(check (float 0.0)) "init ran" 41.0 (get_store_num st "n");
  (* the render body shows the model value *)
  let b = get_display st in
  Alcotest.(check (list value))
    "rendered from the store" [ vnum 41.0 ]
    (match Boxcontent.children b with
    | [ (_, inner) ] -> Boxcontent.own_leaves inner
    | _ -> Alcotest.fail "expected one box")

let test_tap_thunk_rerender () =
  (* (TAP) enqueues [exec v]; (THUNK) runs it; (RENDER) refreshes *)
  let st = boot (counter_core ()) in
  let st = ok_machine "tap" (Machine.tap_first st) in
  Alcotest.(check bool) "tap invalidates" false (State.display_valid st);
  Alcotest.(check int) "one event" 1 (Fqueue.length st.State.queue);
  let st = stable st in
  Alcotest.(check (float 0.0)) "handler ran" 1.0 (get_store_num st "n");
  Alcotest.(check bool) "re-rendered" true (State.display_valid st)

let test_tap_requires_valid_display () =
  let st = boot (counter_core ()) in
  let st = State.invalidate st in
  match Machine.tap_first st with
  | Error (Machine.Not_enabled _) -> ()
  | _ -> Alcotest.fail "TAP requires a valid display (no taps on stale UI)"

let test_tap_requires_handler_in_display () =
  (* the TAP premise [ontap = v] ∈ B: a foreign handler is rejected *)
  let st = boot (counter_core ()) in
  let foreign = Ast.VLam ("_", Typ.unit_, Ast.eunit) in
  match Machine.tap st ~handler:foreign with
  | Error (Machine.Not_enabled _) -> ()
  | _ -> Alcotest.fail "handler must occur in the display"

let test_back_pop () =
  (* (BACK) enqueues [pop]; (POP) pops, or no-ops on an empty stack *)
  let st = boot (counter_core ()) in
  let st = Machine.back st in
  let st = stable st in
  (* popping the only page empties the stack; run_to_stable's STARTUP
     rule then re-pushes start — the system is always live *)
  Alcotest.(check int) "stack is back to one page" 1
    (List.length st.State.stack);
  Alcotest.(check bool) "stable again" true (State.is_stable st)

let push_pop_core () =
  (* start page whose handler pushes a detail page with argument 7 *)
  Program.of_defs
    [
      Program.Global { name = "n"; ty = Typ.Num; init = vnum 0.0 };
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ Ast.eunit;
          render =
            lam "_" Typ.unit_
              (Ast.Boxed
                 ( Some (Srcid.of_int 1),
                   Ast.SetAttr
                     ( "ontap",
                       lam "_" Typ.unit_ (Ast.Push ("detail", num 7.0)) ) ));
        };
      Program.Page
        {
          name = "detail";
          arg_ty = Typ.Num;
          init = lam "x" Typ.Num (Ast.Set ("n", Ast.Var "x"));
          render = lam "x" Typ.Num (Ast.Post (Ast.Var "x"));
        };
    ]

let test_push_runs_init_and_stacks () =
  let st = boot (push_pop_core ()) in
  let st = stable (ok_machine "tap" (Machine.tap_first st)) in
  Alcotest.(check (list string))
    "stack" [ "start"; "detail" ]
    (List.map fst st.State.stack);
  Alcotest.(check (float 0.0)) "detail's init ran with the argument" 7.0
    (get_store_num st "n");
  (* the top page renders *)
  Alcotest.(check (list value)) "detail rendered" [ vnum 7.0 ]
    (Boxcontent.own_leaves (get_display st));
  (* BACK pops back to start *)
  let st = stable (Machine.back st) in
  Alcotest.(check (list string)) "popped" [ "start" ] (List.map fst st.State.stack)

let test_update_happy_path () =
  let st = boot (counter_core ()) in
  let st = stable (ok_machine "tap" (Machine.tap_first st)) in
  Alcotest.(check (float 0.0)) "n = 1" 1.0 (get_store_num st "n");
  (* new code: render shows n doubled; n survives the update *)
  let new_code =
    Program.of_defs
      [
        Program.Global { name = "n"; ty = Typ.Num; init = vnum 0.0 };
        Program.Page
          {
            name = "start";
            arg_ty = Typ.unit_;
            init = lam "_" Typ.unit_ Ast.eunit;
            render =
              lam "_" Typ.unit_
                (Ast.Post (prim "mul" [ Ast.Get "n"; num 2.0 ]));
          };
      ]
  in
  let st = ok_machine "update" (Machine.update new_code st) in
  Alcotest.(check bool) "display invalidated" false (State.display_valid st);
  let st = stable st in
  Alcotest.(check (float 0.0)) "model survived" 1.0 (get_store_num st "n");
  Alcotest.(check (list value)) "view from new code" [ vnum 2.0 ]
    (Boxcontent.own_leaves (get_display st))

let test_update_rejects_ill_typed () =
  let st = boot (counter_core ()) in
  let bad =
    Program.of_defs
      [
        Program.Page
          {
            name = "start";
            arg_ty = Typ.unit_;
            init = lam "_" Typ.unit_ Ast.eunit;
            render = lam "_" Typ.unit_ (Ast.Get "nope");
          };
      ]
  in
  match Machine.update bad st with
  | Error (Machine.Ill_typed _) -> ()
  | _ -> Alcotest.fail "UPDATE requires C' |- C'"

let test_update_requires_empty_queue () =
  let st = State.initial (counter_core ()) in
  let st = State.enqueue Event.Pop st in
  match Machine.update (counter_core ()) st with
  | Error (Machine.Not_enabled _) -> ()
  | _ -> Alcotest.fail "UPDATE requires an empty event queue"

let test_update_drops_deleted_page_and_recovers () =
  (* delete the page the user is on: fix-up drops it and the system
     falls back to the start page *)
  let st = boot (push_pop_core ()) in
  let st = stable (ok_machine "tap" (Machine.tap_first st)) in
  Alcotest.(check int) "on detail" 2 (List.length st.State.stack);
  let without_detail =
    Program.of_defs
      [
        Program.Global { name = "n"; ty = Typ.Num; init = vnum 0.0 };
        Program.Page
          {
            name = "start";
            arg_ty = Typ.unit_;
            init = lam "_" Typ.unit_ Ast.eunit;
            render = lam "_" Typ.unit_ (Ast.Post (str "just start"));
          };
      ]
  in
  let st = ok_machine "update" (Machine.update without_detail st) in
  let st = stable st in
  Alcotest.(check (list string)) "detail dropped" [ "start" ]
    (List.map fst st.State.stack);
  Alcotest.(check bool) "still live" true (State.display_valid st)

let test_no_stale_code_after_update () =
  (* Sec. 4.2: "after a code update, the system contains no stale
     code" — display and queue are empty, and neither globals nor the
     page stack can hold function values *)
  let st = boot (counter_core ()) in
  let st = stable (ok_machine "tap" (Machine.tap_first st)) in
  let st' = ok_machine "update" (Machine.update (counter_core ()) st) in
  Alcotest.(check bool) "display is bottom" false (State.display_valid st');
  Alcotest.(check bool) "queue empty" true (Fqueue.is_empty st'.State.queue);
  let no_fun_in_value v =
    let rec go = function
      | Ast.VLam _ -> false
      | Ast.VNum _ | Ast.VStr _ -> true
      | Ast.VTuple vs | Ast.VList (_, vs) -> List.for_all go vs
    in
    go v
  in
  Alcotest.(check bool) "no closures in the store" true
    (List.for_all (fun (_, v) -> no_fun_in_value v) (Store.bindings st'.State.store));
  Alcotest.(check bool) "no closures in the stack" true
    (List.for_all (fun (_, v) -> no_fun_in_value v) st'.State.stack)

let test_run_to_stable_diverging_handler () =
  (* a handler that diverges: the system reports divergence instead of
     hanging *)
  let prog =
    Program.of_defs
      [
        Program.Func
          {
            name = "loop";
            ty = Typ.Fn (Typ.unit_, Eff.State, Typ.unit_);
            body = lam "x" Typ.unit_ (Ast.App (Ast.Fn "loop", Ast.Var "x"));
          };
        Program.Page
          {
            name = "start";
            arg_ty = Typ.unit_;
            init = lam "_" Typ.unit_ Ast.eunit;
            render =
              lam "_" Typ.unit_
                (Ast.SetAttr
                   ("ontap", lam "_" Typ.unit_ (Ast.App (Ast.Fn "loop", Ast.eunit))));
          };
      ]
  in
  let st = ok_machine "boot" (Machine.boot prog) in
  let st = ok_machine "tap" (Machine.tap_first st) in
  match Machine.run_to_stable ~fuel:50_000 st with
  | Error Machine.Diverged -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Machine.error_to_string e)
  | Ok _ -> Alcotest.fail "expected divergence"

let test_infinite_push_loop () =
  (* Sec. 4.2 notes push loops as a source of unbounded event queues *)
  let prog =
    Program.of_defs
      [
        Program.Page
          {
            name = "start";
            arg_ty = Typ.unit_;
            init = lam "_" Typ.unit_ (Ast.Push ("start", Ast.eunit));
            render = lam "_" Typ.unit_ Ast.eunit;
          };
      ]
  in
  match Machine.boot ~max_steps:1000 prog with
  | Error Machine.Diverged -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Machine.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a diverging push loop"

let test_transitions_preserve_typing () =
  let st = boot (push_pop_core ()) in
  let check_ok st =
    match State_typing.check_state st with
    | Ok () -> ()
    | Error m -> Alcotest.failf "state ill-typed: %s" m
  in
  check_ok st;
  let st = stable (ok_machine "tap" (Machine.tap_first st)) in
  check_ok st;
  let st = stable (Machine.back st) in
  check_ok st;
  let st = ok_machine "update" (Machine.update (push_pop_core ()) st) in
  check_ok st;
  check_ok (stable st)

let suite =
  [
    case "STARTUP" test_startup;
    case "boot: init then render" test_boot_runs_init_then_renders;
    case "TAP -> THUNK -> RENDER" test_tap_thunk_rerender;
    case "TAP requires a valid display" test_tap_requires_valid_display;
    case "TAP premise: handler ∈ B" test_tap_requires_handler_in_display;
    case "BACK / POP on last page restarts" test_back_pop;
    case "PUSH runs init and stacks the page" test_push_runs_init_and_stacks;
    case "UPDATE preserves the model, rebuilds the view" test_update_happy_path;
    case "UPDATE rejects ill-typed code" test_update_rejects_ill_typed;
    case "UPDATE requires an empty queue" test_update_requires_empty_queue;
    case "UPDATE drops a deleted page and recovers" test_update_drops_deleted_page_and_recovers;
    case "no stale code after UPDATE" test_no_stale_code_after_update;
    case "diverging handler is caught" test_run_to_stable_diverging_handler;
    case "infinite push loop is caught" test_infinite_push_loop;
    case "transitions preserve state typing" test_transitions_preserve_typing;
  ]
