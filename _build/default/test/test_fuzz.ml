(** Fuzzing the live environment: random interleavings of taps, back
    buttons, live edits between program variants, and undos must keep
    the system state well-typed, the display valid, and never raise.
    This is the system-level robustness claim behind "the system is
    always live" (Sec. 4.2), at the level of the full stack
    (surface compiler + machine + UI) rather than the bare calculus. *)

open Live_runtime
open Helpers

(** The pool of programs the fuzzer edits between: all variants of the
    mortgage app plus two deliberately different apps, so edits cross
    program{-:}shape boundaries (globals appear/disappear, pages
    appear/disappear). *)
let variants : string array =
  [|
    Live_workloads.Mortgage.source ~listings:3 ();
    Live_workloads.Mortgage.source ~listings:3 ~i1:true ();
    Live_workloads.Mortgage.source ~listings:3 ~i2:true ();
    Live_workloads.Mortgage.source ~listings:3 ~i1:true ~i2:true ~i3:true ();
    Live_workloads.Counter.source;
    Live_workloads.Todo.source;
  |]

type action =
  | Tap of int * int
  | Back
  | Edit of int  (** index into {!variants} *)
  | Undo
  | Broken_edit  (** an edit that must be rejected and change nothing *)

let gen_action : action QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (4, map2 (fun x y -> Tap (x, y)) (int_range 0 45) (int_range 0 40));
      (2, pure Back);
      (2, int_range 0 (Array.length variants - 1) >|= fun i -> Edit i);
      (1, pure Undo);
      (1, pure Broken_edit);
    ]

let gen_script : action list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 1 30) gen_action)

let check_invariants (ls : Live_session.t) : string option =
  let st = Session.state (Live_session.session ls) in
  match Live_core.State_typing.check_state st with
  | Error m -> Some ("ill-typed state: " ^ m)
  | Ok () ->
      if not (Live_core.State.display_valid st) then
        Some "display left invalid"
      else if not (Live_core.State.is_stable st) then Some "state not stable"
      else begin
        (* the screenshot must agree with a fresh render of the same
           display *)
        let direct =
          match Session.display_content (Live_session.session ls) with
          | Some b ->
              Live_ui.Render.screenshot
                ~width:(Session.width (Live_session.session ls))
                b
          | None -> "<none>"
        in
        if String.equal direct (Live_session.screenshot ls) then None
        else Some "screenshot does not match the display"
      end

let prop_fuzz =
  Helpers.qcheck ~count:60 "random live sessions keep their invariants"
    QCheck2.Gen.(pair (int_range 0 (Array.length variants - 1)) gen_script)
    (fun (start, script) ->
      match Live_session.create ~width:46 variants.(start) with
      | Error e ->
          QCheck2.Test.fail_reportf "boot: %s"
            (Live_session.error_to_string e)
      | Ok ls ->
          let apply (a : action) =
            match a with
            | Tap (x, y) -> (
                match Live_session.tap ls ~x ~y with
                | Ok _ -> ()
                | Error e ->
                    QCheck2.Test.fail_reportf "tap: %s"
                      (Live_session.error_to_string e))
            | Back -> (
                match Live_session.back ls with
                | Ok () -> ()
                | Error e ->
                    QCheck2.Test.fail_reportf "back: %s"
                      (Live_session.error_to_string e))
            | Edit i -> (
                match Live_session.edit ls variants.(i) with
                | Ok _ -> ()
                | Error (Live_session.Compile_error e) ->
                    QCheck2.Test.fail_reportf "variant does not compile: %s"
                      (Live_surface.Compile.error_to_string e)
                | Error e ->
                    QCheck2.Test.fail_reportf "edit: %s"
                      (Live_session.error_to_string e))
            | Undo -> (
                match Live_session.undo ls with
                | None | Some (Ok _) -> ()
                | Some (Error e) ->
                    QCheck2.Test.fail_reportf "undo: %s"
                      (Live_session.error_to_string e))
            | Broken_edit -> (
                let before = Live_session.screenshot ls in
                match Live_session.edit ls "page broken {" with
                | Ok _ ->
                    QCheck2.Test.fail_reportf "broken edit accepted"
                | Error (Live_session.Compile_error _) ->
                    if
                      not
                        (String.equal before (Live_session.screenshot ls))
                    then
                      QCheck2.Test.fail_reportf
                        "rejected edit changed the display"
                | Error e ->
                    QCheck2.Test.fail_reportf "broken edit: %s"
                      (Live_session.error_to_string e))
          in
          List.iter
            (fun a ->
              apply a;
              match check_invariants ls with
              | None -> ()
              | Some m -> QCheck2.Test.fail_reportf "%s" m)
            script;
          true)

(* the same fuzz over the restart baseline: it must also never raise,
   and its state must type (it loses data, but never corrupts it) *)
let prop_fuzz_baseline =
  Helpers.qcheck ~count:30 "the restart baseline never corrupts state"
    gen_script (fun script ->
      let compiled = Array.map (fun s -> (ok_compile s).core) variants in
      match Live_baseline.Restart_runtime.create ~width:46 compiled.(0) with
      | Error e ->
          QCheck2.Test.fail_reportf "boot: %s"
            (Live_baseline.Restart_runtime.error_to_string e)
      | Ok t ->
          List.iter
            (fun (a : action) ->
              let r =
                match a with
                | Tap (x, y) ->
                    Result.map
                      (fun _ -> ())
                      (Live_baseline.Restart_runtime.tap t ~x ~y)
                | Back -> Live_baseline.Restart_runtime.back t
                | Edit i ->
                    Result.map
                      (fun _ -> ())
                      (Live_baseline.Restart_runtime.update t compiled.(i))
                | Undo | Broken_edit -> Ok ()
              in
              (match r with
              | Ok () -> ()
              | Error e ->
                  QCheck2.Test.fail_reportf "action failed: %s"
                    (Live_baseline.Restart_runtime.error_to_string e));
              match
                Live_core.State_typing.check_state
                  (Live_baseline.Restart_runtime.state t)
              with
              | Ok () -> ()
              | Error m -> QCheck2.Test.fail_reportf "ill-typed: %s" m)
            script;
          true)

let suite = [ prop_fuzz; prop_fuzz_baseline ]
