examples/quickstart.mli:
