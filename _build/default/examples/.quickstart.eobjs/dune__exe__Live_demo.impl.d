examples/live_demo.ml: Fmt Live_baseline Live_runtime Live_surface Printf
