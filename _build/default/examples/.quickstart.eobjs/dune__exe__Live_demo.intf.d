examples/live_demo.mli:
