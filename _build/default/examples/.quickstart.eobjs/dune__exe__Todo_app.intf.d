examples/todo_app.mli:
