examples/mortgage.ml: Fmt List Live_runtime Live_workloads Printf String
