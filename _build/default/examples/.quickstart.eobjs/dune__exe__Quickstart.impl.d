examples/quickstart.ml: Fmt Live_runtime
