examples/mortgage.mli:
