examples/todo_app.ml: Buffer Fmt List Live_runtime Live_workloads Printf String
