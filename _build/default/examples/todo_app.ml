(** A multi-page application driven end-to-end: the todo list.

    Run with: [dune exec examples/todo_app.exe]

    Demonstrates page-stack navigation (the add-item picker page),
    handlers mutating a list-of-tuples model, conditional styling from
    model state, and one live restyle at the end. *)

module LS = Live_runtime.Live_session

let die fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let section title = Printf.printf "\n==== %s ====\n" title

(* tap the first place where [text] appears on screen *)
let tap_text ls text =
  let lines = String.split_on_char '\n' (LS.screenshot ls) in
  let found = ref false in
  List.iteri
    (fun y line ->
      if not !found then
        let n = String.length line and m = String.length text in
        let rec find x =
          if x + m > n then None
          else if String.sub line x m = text then Some x
          else find (x + 1)
        in
        match find 0 with
        | Some x ->
            found := true;
            ignore (LS.tap ls ~x ~y)
        | None -> ())
    lines;
  if not !found then die "%S not on screen" text

let () =
  let ls =
    match LS.create ~width:40 Live_workloads.Todo.source with
    | Ok ls -> ls
    | Error e -> die "boot: %s" (LS.error_to_string e)
  in
  section "the list";
  print_string (LS.screenshot ls);

  section "toggle 'buy milk'";
  tap_text ls "buy milk";
  print_string (LS.screenshot ls);

  section "add an item (pushes the picker page)";
  tap_text ls "add item";
  print_string (LS.screenshot ls);

  section "pick 'fix bug' (the handler pops back)";
  tap_text ls "fix bug";
  print_string (LS.screenshot ls);

  section "clear completed items";
  tap_text ls "clear done";
  print_string (LS.screenshot ls);

  section "live restyle: checkboxes become arrows; items survive";
  let restyled =
    (* swap the glyphs in the source and apply as a live edit *)
    let replace s from into =
      let n = String.length s and m = String.length from in
      let buf = Buffer.create n in
      let i = ref 0 in
      while !i < n do
        if !i + m <= n && String.sub s !i m = from then begin
          Buffer.add_string buf into;
          i := !i + m
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      Buffer.contents buf
    in
    replace (replace Live_workloads.Todo.source "[x] " "=> ") "[ ] " "-> "
  in
  (match LS.edit ls restyled with
  | Ok o -> print_string o.LS.screenshot
  | Error e -> die "edit: %s" (LS.error_to_string e));
  Printf.printf "\n(same items, same done-flags — only the code changed)\n"
