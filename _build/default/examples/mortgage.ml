(** The paper's full walkthrough (Secs. 2 and 3.1) on the mortgage
    calculator of Figs. 1, 3, 4, 5.

    Run with: [dune exec examples/mortgage.exe]

    1. Boot the app: the start page lists houses for sale (Fig. 1 left).
    2. Tap a listing: the detail page shows the monthly payment and the
       amortization schedule (Fig. 1 right).
    3. Apply the paper's three improvements to the {e running} program:
       I1 — wider margins by direct manipulation;
       I2 — balances formatted as dollars and cents;
       I3 — every fifth amortization row highlighted.
    Between edits the app never restarts: the listings global, the page
    stack (we stay on the detail page) and the term/APR settings all
    survive. *)

module LS = Live_runtime.Live_session

let die fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let section title = Printf.printf "\n==== %s ====\n" title

let () =
  let ls =
    match LS.create ~width:46 (Live_workloads.Mortgage.source ~listings:5 ()) with
    | Ok ls -> ls
    | Error e -> die "boot: %s" (LS.error_to_string e)
  in
  section "Fig. 1 (left): the start page";
  print_string (LS.screenshot ls);

  (* I1: direct manipulation — select the first listing row in the live
     view and give it a margin; the editor writes the code for us *)
  section "I1: margin via direct manipulation";
  (match LS.select_box ls ~x:3 ~y:4 with
  | None -> die "no box at (3,4)"
  | Some sel ->
      Printf.printf "selected boxed statement: %s...\n\n"
        (String.sub sel.Live_runtime.Navigation.text 0
           (min 24 (String.length sel.Live_runtime.Navigation.text)));
      (match
         Live_runtime.Direct_manipulation.set_attribute ls
           ~srcid:sel.Live_runtime.Navigation.srcid ~attr:"margin" ~value:"1"
       with
      | Ok o -> print_string o.LS.screenshot
      | Error e ->
          die "I1: %s" (Live_runtime.Direct_manipulation.error_to_string e)));
  Printf.printf "\n(the editor inserted 'box.margin := 1' into the source)\n";

  (* navigate to the detail page like a user *)
  section "Fig. 1 (right): tap a listing -> detail page";
  (match LS.tap ls ~x:4 ~y:6 with
  | Ok Live_runtime.Session.Tapped -> ()
  | Ok Live_runtime.Session.No_handler -> die "nothing tappable at (4,6)"
  | Error e -> die "tap: %s" (LS.error_to_string e));
  print_string (LS.screenshot ls);

  (* I2: the paper's dollars-and-cents edit, applied live while the
     detail page is open *)
  section "I2: balances in dollars and cents (live edit)";
  (match
     LS.edit ls (Live_workloads.Mortgage.source ~listings:5 ~i1:true ~i2:true ())
   with
  | Ok o -> print_string o.LS.screenshot
  | Error e -> die "I2: %s" (LS.error_to_string e));
  Printf.printf "\n(note: still on the detail page — the page stack survived)\n";

  (* I3: highlight every fifth row *)
  section "I3: highlight every fifth row (live edit)";
  (match
     LS.edit ls
       (Live_workloads.Mortgage.source ~listings:5 ~i1:true ~i2:true ~i3:true ())
   with
  | Ok o ->
      (* show it in ANSI so the light-blue rows are visible *)
      print_string o.LS.screenshot;
      Printf.printf
        "\n(rows 5, 10, 15, 20, 25, 30 now carry background = light blue;\n\
        \ run in a terminal with `dune exec bin/liveui.exe -- render` to\n\
        \ see the colors)\n"
  | Error e -> die "I3: %s" (LS.error_to_string e));

  (* the model is still interactive after three edits *)
  section "still alive: tap the term control";
  let lines = String.split_on_char '\n' (LS.screenshot ls) in
  let term_y =
    match
      List.find_index
        (fun l ->
          let rec has i =
            i + 5 <= String.length l
            && (String.sub l i 5 = "term:" || has (i + 1))
          in
          has 0)
        lines
    with
    | Some y -> y
    | None -> die "no term row"
  in
  (match LS.tap ls ~x:2 ~y:term_y with
  | Ok Live_runtime.Session.Tapped -> ()
  | _ -> die "term tap failed");
  print_string (LS.screenshot ls);
  Printf.printf "\n(term cycled to 120 months; the schedule re-rendered)\n"
