(** Quickstart: the smallest live-programming session.

    Run with: [dune exec examples/quickstart.exe]

    A counter app boots, gets tapped twice, and then receives a live
    code edit.  Watch the count survive the edit — the init body does
    not re-run, the view is rebuilt from the new code applied to the
    old model.  That is the paper's whole point in four screenshots. *)

let source =
  {|global counter : number = 0

page start()
init {
  counter := 0
}
render {
  boxed {
    box.border := 1
    box.padding := 1
    post "taps: " ++ str(counter)
    on tapped {
      counter := counter + 1
    }
  }
  boxed {
    post "tap the box above"
  }
}
|}

(* the live edit: a friendlier label and a highlight *)
let edited_source =
  {|global counter : number = 0

page start()
init {
  counter := 0
}
render {
  boxed {
    box.border := 1
    box.padding := 1
    box.background := "light blue"
    post "you tapped " ++ str(counter) ++ " times"
    on tapped {
      counter := counter + 1
    }
  }
  boxed {
    post "tap the box above"
  }
}
|}

let die fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let () =
  let ls =
    match Live_runtime.Live_session.create ~width:32 source with
    | Ok ls -> ls
    | Error e -> die "boot: %s" (Live_runtime.Live_session.error_to_string e)
  in
  print_endline "== booted ==";
  print_string (Live_runtime.Live_session.screenshot ls);

  (* tap the counter box twice *)
  ignore (Live_runtime.Live_session.tap ls ~x:2 ~y:1);
  ignore (Live_runtime.Live_session.tap ls ~x:2 ~y:1);
  print_endline "\n== after two taps ==";
  print_string (Live_runtime.Live_session.screenshot ls);

  (* live edit: the program keeps running; the model survives *)
  (match Live_runtime.Live_session.edit ls edited_source with
  | Ok outcome ->
      print_endline "\n== after the live edit (count survives!) ==";
      print_string outcome.Live_runtime.Live_session.screenshot
  | Error e -> die "edit: %s" (Live_runtime.Live_session.error_to_string e));

  (* and it is still interactive *)
  ignore (Live_runtime.Live_session.tap ls ~x:2 ~y:1);
  print_endline "\n== still interactive ==";
  print_string (Live_runtime.Live_session.screenshot ls)
