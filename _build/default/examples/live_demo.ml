(** Live programming vs. the edit-compile-run cycle, side by side.

    Run with: [dune exec examples/live_demo.exe]

    The same program and the same edit are pushed through both
    runtimes:
    - the {b live} runtime applies the UPDATE transition: one
      re-render, model intact;
    - the {b restart} baseline stops the program, reboots the new
      code, and replays the recorded interaction trace to win back the
      UI context — and when the edit moves boxes around, the replayed
      taps miss (the trace-divergence problem of Sec. 1).

    Also demonstrates UI-Code Navigation: every box on screen maps
    back to the boxed statement that created it. *)

module LS = Live_runtime.Live_session
module RR = Live_baseline.Restart_runtime

let die fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let section title = Printf.printf "\n==== %s ====\n" title

let v1 =
  {|global score : number = 0

page start()
init {
  score := 0
}
render {
  boxed {
    box.border := 1
    post "score: " ++ str(score)
    on tapped {
      score := score + 10
    }
  }
}
|}

(* the edit adds a banner above the button, moving it down two rows *)
let v2 =
  {|global score : number = 0

page start()
init {
  score := 0
}
render {
  boxed {
    box.background := "teal"
    box.color := "white"
    post "NEW: now with a banner"
  }
  boxed {
    box.border := 1
    post "score: " ++ str(score)
    on tapped {
      score := score + 10
    }
  }
}
|}

let compile src =
  match Live_surface.Compile.compile src with
  | Ok c -> c.Live_surface.Compile.core
  | Error e -> die "compile: %s" (Live_surface.Compile.error_to_string e)

let () =
  (* ---- the live runtime ---- *)
  let live =
    match LS.create ~width:30 v1 with
    | Ok ls -> ls
    | Error e -> die "live boot: %s" (LS.error_to_string e)
  in
  (* ---- the restart baseline ---- *)
  let restart =
    match RR.create ~width:30 (compile v1) with
    | Ok t -> t
    | Error e -> die "restart boot: %s" (RR.error_to_string e)
  in

  section "both runtimes: three taps each (score 30)";
  for _ = 1 to 3 do
    ignore (LS.tap live ~x:2 ~y:1);
    ignore (RR.tap restart ~x:2 ~y:1)
  done;
  Printf.printf "-- live --\n%s" (LS.screenshot live);
  Printf.printf "-- restart baseline --\n%s" (RR.screenshot restart);

  section "UI-Code Navigation: what code made this box?";
  (match LS.select_box live ~x:2 ~y:1 with
  | Some sel ->
      Printf.printf "box at (2,1) was created by (%s):\n%s\n"
        (Live_surface.Loc.to_string sel.Live_runtime.Navigation.span)
        sel.Live_runtime.Navigation.text
  | None -> die "no box at (2,1)");

  section "the same edit hits both runtimes";
  (match LS.edit live v2 with
  | Ok o ->
      Printf.printf "-- live: one UPDATE transition, score survives --\n%s"
        o.LS.screenshot
  | Error e -> die "live edit: %s" (LS.error_to_string e));
  (match RR.update restart (compile v2) with
  | Ok outcome ->
      Printf.printf
        "-- restart: rebooted, replayed %d interactions, %d tap(s) MISSED \
         (the banner moved the button) --\n%s"
        outcome.RR.replayed outcome.RR.missed_taps (RR.screenshot restart)
  | Error e -> die "restart update: %s" (RR.error_to_string e));

  section "conclusion";
  Printf.printf
    "live:    score preserved (30), no replay, display consistent with \
     the new code.\n\
     restart: score lost — the replayed taps landed on the banner.  \
     This is Sec. 2's\n\
     archery-vs-hose contrast, mechanised.\n"
