(** [liveui] — run, render, check, and live-edit programs from the
    command line.

    {v
      liveui render FILE [--width W] [--plain]     one-shot screenshot
      liveui check FILE                            typecheck only
      liveui dump-core FILE                        print the lowered calculus
      liveui run FILE [--width W]                  interactive session
      liveui demo NAME                             render a bundled workload
    v}

    The interactive session reads commands from stdin:

    {v
      tap X Y       tap the display at column X, row Y
      back          the back button
      reload        re-read FILE and apply it as a live UPDATE
      select X Y    show the boxed statement that made the box at (X,Y)
      source        print the current program source
      state         print the formal system state (C,D,S,P,Q)
      quit
    v}

    Editing FILE in another window and typing [reload] is the
    two-pane live-programming experience of Fig. 2, at teletype
    fidelity. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline (Live_surface.Compile.error_to_string e);
      exit 1

let or_die_machine = function
  | Ok v -> v
  | Error e ->
      prerr_endline (Live_core.Machine.error_to_string e);
      exit 1

(* -- arguments ------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"Program source (.live).")

let width_arg =
  Arg.(value & opt int 48 & info [ "width"; "w" ] ~docv:"W"
       ~doc:"Display width in character cells.")

let plain_arg =
  Arg.(value & flag & info [ "plain" ]
       ~doc:"Plain text output (no ANSI colors).")

(* -- render ---------------------------------------------------------- *)

let render_cmd =
  let run file width plain =
    let c = or_die (Live_surface.Compile.compile (read_file file)) in
    let session =
      or_die_machine
        (Live_runtime.Session.create ~width c.Live_surface.Compile.core)
    in
    print_string
      (if plain then Live_runtime.Session.screenshot session
       else Live_runtime.Session.screenshot_ansi session)
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Compile, boot, and print one screenshot.")
    Term.(const run $ file_arg $ width_arg $ plain_arg)

(* -- check ----------------------------------------------------------- *)

let check_cmd =
  let run file =
    match Live_surface.Compile.compile (read_file file) with
    | Ok c ->
        let p = c.Live_surface.Compile.core in
        Printf.printf
          "OK: %d definition(s) (%d globals, %d functions, %d pages)\n"
          (List.length (Live_core.Program.defs p))
          (List.length (Live_core.Program.globals p))
          (List.length (Live_core.Program.functions p))
          (List.length (Live_core.Program.pages p))
    | Error e ->
        prerr_endline (Live_surface.Compile.error_to_string e);
        exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type-and-effect check a program.")
    Term.(const run $ file_arg)

(* -- dump-core -------------------------------------------------------- *)

let dump_core_cmd =
  let run file =
    let c = or_die (Live_surface.Compile.compile (read_file file)) in
    Fmt.pr "%a@." Live_core.Program.pp c.Live_surface.Compile.core
  in
  Cmd.v
    (Cmd.info "dump-core"
       ~doc:"Print the program lowered to the Fig. 6 calculus.")
    Term.(const run $ file_arg)

(* -- demo ------------------------------------------------------------- *)

let demo_cmd =
  let demos =
    [
      ("mortgage", fun () -> Live_workloads.Mortgage.source ());
      ("counter", fun () -> Live_workloads.Counter.source);
      ("todo", fun () -> Live_workloads.Todo.source);
      ("gallery", fun () -> Live_workloads.Gallery.source);
      ("calculator", fun () -> Live_workloads.Calculator.source);
    ]
  in
  let name_arg =
    Arg.(required & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) demos)))
           None
         & info [] ~docv:"NAME"
             ~doc:"One of: mortgage, counter, todo, gallery, calculator.")
  in
  let source_flag =
    Arg.(value & flag & info [ "source" ] ~doc:"Print the source instead.")
  in
  let run name width plain source =
    let src = (List.assoc name demos) () in
    if source then print_string src
    else begin
      let c = or_die (Live_surface.Compile.compile src) in
      let session =
        or_die_machine
          (Live_runtime.Session.create ~width c.Live_surface.Compile.core)
      in
      print_string
        (if plain then Live_runtime.Session.screenshot session
         else Live_runtime.Session.screenshot_ansi session)
    end
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Render one of the bundled example programs.")
    Term.(const run $ name_arg $ width_arg $ plain_arg $ source_flag)

(* -- run (interactive) ------------------------------------------------ *)

let run_cmd =
  let run file width plain =
    let show (ls : Live_runtime.Live_session.t) =
      print_string
        (if plain then Live_runtime.Live_session.screenshot ls
         else Live_runtime.Live_session.screenshot_ansi ls)
    in
    let ls =
      match Live_runtime.Live_session.create ~width (read_file file) with
      | Ok ls -> ls
      | Error e ->
          prerr_endline (Live_runtime.Live_session.error_to_string e);
          exit 1
    in
    show ls;
    print_endline
      "commands: tap X Y | back | reload | select X Y | probe EXPR | source \
       | state | quit";
    let rec loop () =
      print_string "> ";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line -> (
          let words =
            String.split_on_char ' ' (String.trim line)
            |> List.filter (fun w -> w <> "")
          in
          match words with
          | [] -> loop ()
          | [ "quit" ] | [ "q" ] -> ()
          | [ "tap"; x; y ] -> (
              match (int_of_string_opt x, int_of_string_opt y) with
              | Some x, Some y ->
                  (match Live_runtime.Live_session.tap ls ~x ~y with
                  | Ok Live_runtime.Session.Tapped -> show ls
                  | Ok Live_runtime.Session.No_handler ->
                      print_endline "(nothing tappable there)"
                  | Error e ->
                      print_endline
                        (Live_runtime.Live_session.error_to_string e));
                  loop ()
              | _ ->
                  print_endline "usage: tap X Y";
                  loop ())
          | [ "back" ] ->
              (match Live_runtime.Live_session.back ls with
              | Ok () -> show ls
              | Error e ->
                  print_endline (Live_runtime.Live_session.error_to_string e));
              loop ()
          | [ "reload" ] ->
              (match Live_runtime.Live_session.edit ls (read_file file) with
              | Ok outcome ->
                  let r = outcome.Live_runtime.Live_session.report in
                  if r.Live_core.Fixup.dropped_globals <> [] then
                    Printf.printf "(reset globals: %s)\n"
                      (String.concat ", " r.Live_core.Fixup.dropped_globals);
                  if r.Live_core.Fixup.dropped_pages <> [] then
                    Printf.printf "(dropped pages: %s)\n"
                      (String.concat ", " r.Live_core.Fixup.dropped_pages);
                  show ls
              | Error e ->
                  print_endline
                    ("edit rejected; still running the previous version: "
                    ^ Live_runtime.Live_session.error_to_string e));
              loop ()
          | [ "select"; x; y ] -> (
              match (int_of_string_opt x, int_of_string_opt y) with
              | Some x, Some y ->
                  (match Live_runtime.Live_session.select_box ls ~x ~y with
                  | Some sel ->
                      Printf.printf "%s:\n%s\n"
                        (Live_surface.Loc.to_string
                           sel.Live_runtime.Navigation.span)
                        sel.Live_runtime.Navigation.text
                  | None -> print_endline "(no box there)");
                  loop ()
              | _ ->
                  print_endline "usage: select X Y";
                  loop ())
          | "probe" :: rest when rest <> [] ->
              (match
                 Live_runtime.Probe.probe_source ls (String.concat " " rest)
               with
              | Ok r -> print_string r.Live_runtime.Probe.screenshot
              | Error e ->
                  print_endline (Live_runtime.Probe.error_to_string e));
              loop ()
          | [ "source" ] ->
              print_string (Live_runtime.Live_session.source ls);
              loop ()
          | [ "state" ] ->
              Fmt.pr "%a@."
                Live_core.State.pp
                (Live_runtime.Session.state
                   (Live_runtime.Live_session.session ls));
              loop ()
          | _ ->
              print_endline "unknown command";
              loop ())
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a program interactively; edit the file elsewhere and type \
          'reload' for live updates.")
    Term.(const run $ file_arg $ width_arg $ plain_arg)

(* -- step ------------------------------------------------------------- *)

let step_cmd =
  let expr_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"EXPR"
         ~doc:"Expression to reduce, in surface syntax.")
  in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N"
         ~doc:"Maximum number of small steps to show.")
  in
  let run file expr limit =
    let c = or_die (Live_surface.Compile.compile (read_file file)) in
    match Live_runtime.Stepper.trace_source ~limit c expr with
    | Ok t -> print_string (Live_runtime.Stepper.to_string t)
    | Error m ->
        prerr_endline m;
        exit 1
  in
  Cmd.v
    (Cmd.info "step"
       ~doc:
         "Trace an expression through the Fig. 8 small-step machine, \
          one numbered reduction per line.")
    Term.(const run $ file_arg $ expr_arg $ limit_arg)

(* -- main ------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "liveui" ~version:"1.0.0"
      ~doc:
        "Live UI programming: an implementation of 'It's Alive! \
         Continuous Feedback in UI Programming' (PLDI 2013)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ render_cmd; check_cmd; dump_core_cmd; run_cmd; demo_cmd; step_cmd ]))
